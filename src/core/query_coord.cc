#include "core/query_coord.h"

#include <algorithm>

#include "common/logging.h"
#include "common/metrics.h"
#include "core/lease.h"

namespace manu {

QueryCoordinator::QueryCoordinator(const CoreContext& ctx,
                                   DataCoordinator* data_coord,
                                   RootCoordinator* root_coord)
    : ctx_(ctx), data_coord_(data_coord), root_coord_(root_coord) {}

QueryCoordinator::~QueryCoordinator() { Stop(); }

void QueryCoordinator::Start() {
  stop_.store(false, std::memory_order_release);
  thread_ = std::thread([this] { Run(); });
}

void QueryCoordinator::Stop() {
  stop_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
}

void QueryCoordinator::Run() {
  auto sub = ctx_.mq->Subscribe(CoordChannelName(),
                                SubscribePosition::kEarliest);
  while (!stop_.load(std::memory_order_acquire)) {
    auto entries = sub->Poll(
        ctx_.config.poll_batch,
        std::chrono::milliseconds(ctx_.config.poll_timeout_ms));
    for (const auto& entry : entries) {
      switch (entry->type) {
        case LogEntryType::kIndexBuilt: {
          auto meta = SegmentMeta::Deserialize(entry->payload);
          if (meta.ok()) OnSegmentReady(meta.value());
          break;
        }
        case LogEntryType::kSegmentSealed: {
          // Collections without a declared index still hand sealed segments
          // off to a query node (binlog only) so growing memory is bounded.
          auto meta = SegmentMeta::Deserialize(entry->payload);
          if (!meta.ok()) break;
          auto coll = root_coord_->GetCollectionById(meta.value().collection);
          if (coll.ok() && coll.value().index_params.empty()) {
            OnSegmentReady(meta.value());
          }
          break;
        }
        case LogEntryType::kCompaction: {
          BinaryReader r(entry->payload);
          auto dropped = r.GetVector<SegmentId>();
          if (!dropped.ok()) break;
          std::lock_guard<std::mutex> lk(mu_);
          auto it = serving_.find(entry->collection);
          if (it == serving_.end()) break;
          if (entry->segment == kInvalidSegmentId ||
              it->second.segment_owner.count(entry->segment) > 0) {
            // Merged result already serving (or everything was deleted):
            // release the inputs now.
            ReleaseSegmentsLocked(entry->collection, dropped.value());
          } else {
            it->second.pending_drops[entry->segment] = dropped.value();
          }
          break;
        }
        default:
          break;
      }
    }
  }
}

std::shared_ptr<QueryNode> QueryCoordinator::NodeById(NodeId id) const {
  for (const auto& node : nodes_) {
    if (node->id() == id) return node;
  }
  return nullptr;
}

std::shared_ptr<QueryNode> QueryCoordinator::LeastLoadedLocked() const {
  std::shared_ptr<QueryNode> best;
  uint64_t best_bytes = 0;
  for (const auto& node : nodes_) {
    const uint64_t bytes = node->MemoryBytes();
    if (best == nullptr || bytes < best_bytes) {
      best = node;
      best_bytes = bytes;
    }
  }
  return best;
}

void QueryCoordinator::AddQueryNode(std::shared_ptr<QueryNode> node) {
  std::lock_guard<std::mutex> lk(mu_);
  // Follow every serving collection's channels (deletes + ticks) so the
  // node can immediately host sealed segments of any shard.
  for (const auto& [collection, serving] : serving_) {
    for (ShardId shard = 0; shard < serving.num_shards; ++shard) {
      node->AddChannel(collection, shard, serving.schema, /*primary=*/false);
    }
  }
  nodes_.push_back(std::move(node));
}

Status QueryCoordinator::RemoveQueryNode(NodeId id) {
  std::lock_guard<std::mutex> lk(mu_);
  if (nodes_.size() <= 1) {
    return Status::InvalidArgument("cannot remove the last query node");
  }
  auto victim = NodeById(id);
  if (victim == nullptr) return Status::NotFound("query node");

  for (auto& [collection, serving] : serving_) {
    // Reassign primary channels.
    for (auto& [shard, owner] : serving.channel_owner) {
      if (owner != id) continue;
      // Round-robin over the survivors.
      for (const auto& node : nodes_) {
        if (node->id() == id) continue;
        node->PromoteChannel(collection, shard);
        victim->DemoteChannel(collection, shard);
        owner = node->id();
        break;
      }
    }
    // Move sealed segments: survivors load from object storage first, then
    // the victim releases (paper: "a query node can be removed once other
    // query nodes load the indexes for the segments it handles"). A replica
    // set that still has survivors needs no reload at all.
    for (auto& [segment, owners] : serving.segment_owner) {
      auto victim_it = std::find(owners.begin(), owners.end(), id);
      if (victim_it == owners.end()) continue;
      owners.erase(victim_it);
      if (owners.empty()) {
        auto meta = data_coord_->GetSegment(collection, segment);
        if (!meta.ok()) continue;
        // Prefer the shard's channel owner (already reassigned above): it
        // sits in every fan-out set and suppresses any replayed growing
        // twin via the sealed-twin-wins rule.
        std::shared_ptr<QueryNode> target;
        auto primary_it = serving.channel_owner.find(meta.value().shard);
        if (primary_it != serving.channel_owner.end() &&
            primary_it->second != id) {
          target = NodeById(primary_it->second);
        }
        if (target == nullptr) {
          for (const auto& node : nodes_) {
            if (node->id() != id &&
                (target == nullptr ||
                 node->MemoryBytes() < target->MemoryBytes())) {
              target = node;
            }
          }
        }
        if (target == nullptr) continue;
        MANU_RETURN_NOT_OK(
            target->LoadSealedSegment(meta.value(), serving.schema));
        owners.push_back(target->id());
      }
      // Release only after the survivor serves the segment.
      victim->ReleaseSegment(collection, segment);
    }
    victim->RemoveCollection(collection);
  }
  victim->Stop();
  std::erase_if(nodes_, [&](const auto& n) { return n->id() == id; });
  if (ctx_.leases != nullptr) ctx_.leases->Deregister(id);
  MANU_LOG_INFO << "query node " << id << " removed (scale-down)";
  return Status::OK();
}

Status QueryCoordinator::RecoverDeadNodeLocked(NodeId id) {
  const int64_t t0 = NowMicros();
  auto victim = NodeById(id);
  if (victim == nullptr) return Status::NotFound("query node");
  if (nodes_.size() <= 1) {
    return Status::InvalidArgument("cannot kill the last query node");
  }
  // Crash first: no cooperation from the victim.
  victim->Stop();
  std::erase_if(nodes_, [&](const auto& n) { return n->id() == id; });

  for (auto& [collection, serving] : serving_) {
    for (auto& [shard, owner] : serving.channel_owner) {
      if (owner != id) continue;
      auto target = nodes_[static_cast<size_t>(shard) % nodes_.size()];
      target->PromoteChannel(collection, shard);
      owner = target->id();
    }
    for (auto& [segment, owners] : serving.segment_owner) {
      auto victim_it = std::find(owners.begin(), owners.end(), id);
      if (victim_it == owners.end()) continue;
      owners.erase(victim_it);
      if (!owners.empty()) continue;  // A hot replica already serves it.
      auto meta = data_coord_->GetSegment(collection, segment);
      if (!meta.ok()) continue;
      // Prefer the shard's channel owner: the promoted primary replays the
      // channel from the beginning, and hosting the sealed copy there lets
      // the sealed-twin-wins rule suppress the replayed growing twin
      // instead of serving the rows twice from two nodes.
      std::shared_ptr<QueryNode> target;
      auto primary_it = serving.channel_owner.find(meta.value().shard);
      if (primary_it != serving.channel_owner.end()) {
        target = NodeById(primary_it->second);
      }
      if (target == nullptr) target = LeastLoadedLocked();
      if (target == nullptr) continue;
      Status st = target->LoadSealedSegment(meta.value(), serving.schema);
      if (st.ok()) owners.push_back(target->id());
    }
  }
  // Recovery duration: promotion + segment reloads. The promoted channels
  // keep replaying asynchronously afterwards; their progress is gated by
  // the re-armed service_ts, not this histogram.
  MetricsRegistry::Global()
      .GetHistogram("query_coord.recovery_us")
      ->Observe(static_cast<double>(NowMicros() - t0));
  return Status::OK();
}

Status QueryCoordinator::KillQueryNode(NodeId id) {
  std::lock_guard<std::mutex> lk(mu_);
  MANU_RETURN_NOT_OK(RecoverDeadNodeLocked(id));
  MetricsRegistry::Global().GetCounter("query_coord.nodes_killed")->Add(1);
  // Manual kill: drop the lease too, so the watchdog does not fire a second
  // (NotFound) recovery for the same node.
  if (ctx_.leases != nullptr) ctx_.leases->Deregister(id);
  MANU_LOG_INFO << "query node " << id << " killed and recovered";
  return Status::OK();
}

Status QueryCoordinator::OnNodeDead(NodeId id) {
  std::lock_guard<std::mutex> lk(mu_);
  MANU_RETURN_NOT_OK(RecoverDeadNodeLocked(id));
  MANU_LOG_INFO << "query node " << id
                << " lease expired; channels and segments reassigned";
  return Status::OK();
}

Status QueryCoordinator::CrashNode(NodeId id) {
  std::lock_guard<std::mutex> lk(mu_);
  auto victim = NodeById(id);
  if (victim == nullptr) return Status::NotFound("query node");
  // Stop the pump only: the node stays registered as a channel/segment
  // owner and its lease keeps counting down. Detection and recovery are the
  // watchdog's job.
  victim->Stop();
  MANU_LOG_INFO << "query node " << id << " crashed (abrupt, no recovery)";
  return Status::OK();
}

size_t QueryCoordinator::NumQueryNodes() const {
  std::lock_guard<std::mutex> lk(mu_);
  return nodes_.size();
}

std::vector<std::shared_ptr<QueryNode>> QueryCoordinator::Nodes() const {
  std::lock_guard<std::mutex> lk(mu_);
  return nodes_;
}

Status QueryCoordinator::LoadCollection(const CollectionMeta& meta) {
  std::lock_guard<std::mutex> lk(mu_);
  if (nodes_.empty()) return Status::Unavailable("no query nodes");
  CollectionServing& serving = serving_[meta.id];
  serving.schema = std::make_shared<CollectionSchema>(meta.schema);
  serving.index_params = meta.index_params;
  serving.num_shards = meta.num_shards;
  for (ShardId shard = 0; shard < meta.num_shards; ++shard) {
    auto primary = nodes_[static_cast<size_t>(shard) % nodes_.size()];
    serving.channel_owner[shard] = primary->id();
    for (const auto& node : nodes_) {
      node->AddChannel(meta.id, shard, serving.schema,
                       /*primary=*/node == primary);
    }
  }

  LogEntry announce;
  announce.type = LogEntryType::kLoadCollection;
  announce.timestamp = ctx_.tso->Allocate();
  announce.collection = meta.id;
  ctx_.mq->Publish(CoordChannelName(), std::move(announce));
  return Status::OK();
}

Status QueryCoordinator::ReleaseCollection(CollectionId collection) {
  std::lock_guard<std::mutex> lk(mu_);
  serving_.erase(collection);
  // Announced via log; nodes release asynchronously (Section 3.3's example
  // of log-based coordination) — here we also release synchronously since
  // nodes are in-process.
  LogEntry announce;
  announce.type = LogEntryType::kReleaseCollection;
  announce.timestamp = ctx_.tso->Allocate();
  announce.collection = collection;
  ctx_.mq->Publish(CoordChannelName(), std::move(announce));
  for (const auto& node : nodes_) node->RemoveCollection(collection);
  return Status::OK();
}

std::vector<std::shared_ptr<QueryNode>> QueryCoordinator::NodesFor(
    CollectionId collection) const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<std::shared_ptr<QueryNode>> out;
  auto it = serving_.find(collection);
  if (it == serving_.end()) return out;
  for (const auto& node : nodes_) {
    const NodeId id = node->id();
    bool involved = false;
    for (const auto& [_, owner] : it->second.channel_owner) {
      if (owner == id) involved = true;
    }
    for (const auto& [_, owners] : it->second.segment_owner) {
      if (std::find(owners.begin(), owners.end(), id) != owners.end()) {
        involved = true;
      }
    }
    if (involved) out.push_back(node);
  }
  return out;
}

namespace {

/// splitmix64 finalizer: turns the route counter into an independent draw.
uint64_t MixRouteSeed(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

int64_t QueryCoordinator::RouteLoadScore(
    const std::shared_ptr<QueryNode>& node) const {
  NodeLoad load;
  bool fresh = false;
  if (ctx_.leases != nullptr) {
    load = ctx_.leases->LoadOf(node->id());
    fresh = load.updated_ms > 0 &&
            NowMs() - load.updated_ms <= ctx_.leases->ttl_ms();
  }
  if (!fresh) load = node->LoadSnapshot();
  // Outstanding requests dominate; EWMA service time breaks ties between
  // equally-backlogged nodes (a slow node at depth n is worse than a fast
  // one at depth n).
  return load.inflight * 1'000'000 + load.ewma_latency_us;
}

std::vector<QueryCoordinator::NodeRoute> QueryCoordinator::PlanFor(
    CollectionId collection) const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<NodeRoute> routes;
  auto it = serving_.find(collection);
  if (it == serving_.end()) return routes;
  const CollectionServing& serving = it->second;

  std::map<NodeId, size_t> route_index;
  auto route_for = [&](NodeId id) -> NodeRoute* {
    auto found = route_index.find(id);
    if (found != route_index.end()) return &routes[found->second];
    auto node = NodeById(id);
    if (node == nullptr) return nullptr;
    route_index[id] = routes.size();
    routes.push_back(NodeRoute{std::move(node), 0, {}});
    return &routes.back();
  };

  // Channel owners are always in the plan: growing segments and the
  // consistency gate live only there.
  for (const auto& [shard, owner] : serving.channel_owner) {
    (void)route_for(owner);
  }

  // Power-of-two-choices per sealed segment: two deterministic
  // pseudo-random candidates from the owner set, lower load wins. Against
  // always-least-loaded this avoids herding every segment of a plan onto
  // the momentarily-idlest node.
  for (const auto& [segment, owners] : serving.segment_owner) {
    std::vector<NodeId> live;
    for (NodeId id : owners) {
      if (NodeById(id) != nullptr) live.push_back(id);
    }
    if (live.empty()) continue;
    NodeId chosen = live[0];
    if (live.size() > 1) {
      const uint64_t draw = MixRouteSeed(
          route_seq_.fetch_add(1, std::memory_order_relaxed) ^
          (static_cast<uint64_t>(segment) << 32));
      const size_t a = static_cast<size_t>(draw % live.size());
      const size_t b = static_cast<size_t>(
          (a + 1 + (draw >> 32) % (live.size() - 1)) % live.size());
      chosen = RouteLoadScore(NodeById(live[a])) <=
                       RouteLoadScore(NodeById(live[b]))
                   ? live[a]
                   : live[b];
    }
    NodeRoute* route = route_for(chosen);
    if (route != nullptr) route->sealed_filter.push_back(segment);
  }

  for (NodeRoute& route : routes) {
    std::sort(route.sealed_filter.begin(), route.sealed_filter.end());
    route.weight = static_cast<int64_t>(route.sealed_filter.size()) +
                   route.node->NumGrowingOnlySegments(collection);
  }
  return routes;
}

void QueryCoordinator::OnSegmentReady(const SegmentMeta& meta) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = serving_.find(meta.collection);
  if (it == serving_.end()) return;
  CollectionServing& serving = it->second;

  // Pick the replica set: existing owners reload in place (new index
  // version); then the shard's channel owner; missing replicas go to the
  // least-loaded remaining nodes.
  std::vector<std::shared_ptr<QueryNode>> targets;
  auto owner = serving.segment_owner.find(meta.id);
  if (owner != serving.segment_owner.end()) {
    for (NodeId id : owner->second) {
      auto node = NodeById(id);
      if (node != nullptr) targets.push_back(node);
    }
  }
  const size_t want = std::max<size_t>(
      1, std::min<size_t>(static_cast<size_t>(ctx_.config.replica_factor),
                          nodes_.size()));
  // The channel owner hosts the growing twin and sits in every proxy
  // fan-out set for this collection, so loading the sealed segment there
  // makes the growing->sealed handoff atomic for in-flight searches: a
  // search that fanned out before this handoff still reaches a node that
  // serves the rows, either from the growing twin (pre-load) or from the
  // sealed copy (the sealed-twin-wins rule covers the overlap). Loading
  // only onto some other node would let DropGrowing below race ahead of a
  // search already queued on the primary, losing the segment's rows from
  // that search entirely.
  auto primary_it = serving.channel_owner.find(meta.shard);
  if (primary_it != serving.channel_owner.end() && targets.size() < want) {
    auto primary = NodeById(primary_it->second);
    if (primary != nullptr &&
        std::find(targets.begin(), targets.end(), primary) == targets.end()) {
      targets.push_back(primary);
    }
  }
  std::vector<std::shared_ptr<QueryNode>> candidates = nodes_;
  std::sort(candidates.begin(), candidates.end(),
            [](const auto& a, const auto& b) {
              return a->MemoryBytes() < b->MemoryBytes();
            });
  for (const auto& node : candidates) {
    if (targets.size() >= want) break;
    if (std::find(targets.begin(), targets.end(), node) == targets.end()) {
      targets.push_back(node);
    }
  }
  if (targets.empty()) return;

  std::vector<NodeId> loaded;
  for (const auto& target : targets) {
    Status st = target->LoadSealedSegment(meta, serving.schema);
    if (!st.ok()) {
      MANU_LOG_ERROR << "segment load failed: " << st.ToString();
      continue;
    }
    loaded.push_back(target->id());
  }
  if (loaded.empty()) return;
  serving.segment_owner[meta.id] = std::move(loaded);
  // Every node drops the growing twin (the loader already did).
  for (const auto& node : nodes_) {
    node->DropGrowing(meta.collection, meta.id);
  }
  // If this segment is a compaction result, its inputs can go now.
  auto pending = serving.pending_drops.find(meta.id);
  if (pending != serving.pending_drops.end()) {
    ReleaseSegmentsLocked(meta.collection, pending->second);
    serving.pending_drops.erase(pending);
  }
}

void QueryCoordinator::ReleaseSegmentsLocked(
    CollectionId collection, const std::vector<SegmentId>& segments) {
  auto it = serving_.find(collection);
  if (it == serving_.end()) return;
  for (SegmentId segment : segments) {
    auto owner = it->second.segment_owner.find(segment);
    if (owner == it->second.segment_owner.end()) continue;
    for (NodeId id : owner->second) {
      auto node = NodeById(id);
      if (node != nullptr) node->ReleaseSegment(collection, segment);
    }
    it->second.segment_owner.erase(owner);
  }
}

Status QueryCoordinator::Rebalance() {
  std::lock_guard<std::mutex> lk(mu_);
  if (nodes_.size() < 2) return Status::OK();
  bool moved = true;
  while (moved) {
    moved = false;
    // Count segment replicas per node across collections.
    std::map<NodeId, int64_t> load;
    for (const auto& node : nodes_) load[node->id()] = 0;
    for (const auto& [_, serving] : serving_) {
      for (const auto& [__, owners] : serving.segment_owner) {
        for (NodeId id : owners) ++load[id];
      }
    }
    auto [min_it, max_it] = std::minmax_element(
        load.begin(), load.end(),
        [](const auto& a, const auto& b) { return a.second < b.second; });
    if (max_it->second - min_it->second <= 1) break;

    // Move one replica from the max node to the min node (only if the min
    // node does not already hold one).
    for (auto& [collection, serving] : serving_) {
      for (auto& [segment, owners] : serving.segment_owner) {
        auto source_it =
            std::find(owners.begin(), owners.end(), max_it->first);
        if (source_it == owners.end()) continue;
        if (std::find(owners.begin(), owners.end(), min_it->first) !=
            owners.end()) {
          continue;
        }
        auto meta = data_coord_->GetSegment(collection, segment);
        if (!meta.ok()) continue;
        auto target = NodeById(min_it->first);
        auto source = NodeById(max_it->first);
        if (target == nullptr || source == nullptr) continue;
        MANU_RETURN_NOT_OK(
            target->LoadSealedSegment(meta.value(), serving.schema));
        source->ReleaseSegment(collection, segment);
        *source_it = target->id();
        moved = true;
        break;
      }
      if (moved) break;
    }
  }
  return Status::OK();
}

}  // namespace manu
