#include "core/query_coord.h"

#include <algorithm>

#include "common/logging.h"
#include "common/metrics.h"
#include "core/lease.h"

namespace manu {

QueryCoordinator::QueryCoordinator(const CoreContext& ctx,
                                   DataCoordinator* data_coord,
                                   RootCoordinator* root_coord)
    : ctx_(ctx),
      data_coord_(data_coord),
      root_coord_(root_coord),
      placement_(std::make_unique<PlacementManager>(ctx.config, this)) {}

QueryCoordinator::~QueryCoordinator() { Stop(); }

void QueryCoordinator::Start() {
  stop_.store(false, std::memory_order_release);
  thread_ = std::thread([this] { Run(); });
  placement_->Start();
}

void QueryCoordinator::Stop() {
  placement_->Stop();
  stop_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
}

void QueryCoordinator::Run() {
  auto sub = ctx_.mq->Subscribe(CoordChannelName(),
                                SubscribePosition::kEarliest);
  while (!stop_.load(std::memory_order_acquire)) {
    auto entries = sub->Poll(
        ctx_.config.poll_batch,
        std::chrono::milliseconds(ctx_.config.poll_timeout_ms));
    for (const auto& entry : entries) {
      switch (entry->type) {
        case LogEntryType::kIndexBuilt: {
          auto meta = SegmentMeta::Deserialize(entry->payload);
          if (meta.ok()) OnSegmentReady(meta.value());
          break;
        }
        case LogEntryType::kSegmentSealed: {
          // Collections without a declared index still hand sealed segments
          // off to a query node (binlog only) so growing memory is bounded.
          auto meta = SegmentMeta::Deserialize(entry->payload);
          if (!meta.ok()) break;
          auto coll = root_coord_->GetCollectionById(meta.value().collection);
          if (coll.ok() && coll.value().index_params.empty()) {
            OnSegmentReady(meta.value());
          }
          break;
        }
        case LogEntryType::kCompaction: {
          BinaryReader r(entry->payload);
          auto dropped = r.GetVector<SegmentId>();
          if (!dropped.ok()) break;
          std::lock_guard<std::mutex> lk(mu_);
          auto it = serving_.find(entry->collection);
          if (it == serving_.end()) break;
          if (entry->segment == kInvalidSegmentId ||
              placement_->IsServing(entry->collection, entry->segment)) {
            // Merged result already serving (or everything was deleted):
            // release the inputs now.
            ReleaseSegmentsLocked(entry->collection, dropped.value());
          } else {
            it->second.pending_drops[entry->segment] = dropped.value();
          }
          break;
        }
        default:
          break;
      }
    }
  }
}

std::shared_ptr<QueryNode> QueryCoordinator::NodeById(NodeId id) const {
  for (const auto& node : nodes_) {
    if (node->id() == id) return node;
  }
  return nullptr;
}

std::shared_ptr<QueryNode> QueryCoordinator::LeastLoadedLocked() const {
  std::shared_ptr<QueryNode> best;
  uint64_t best_bytes = 0;
  for (const auto& node : nodes_) {
    if (draining_.count(node->id()) > 0) continue;
    const uint64_t bytes = node->MemoryBytes();
    if (best == nullptr || bytes < best_bytes) {
      best = node;
      best_bytes = bytes;
    }
  }
  return best;
}

void QueryCoordinator::AddQueryNode(std::shared_ptr<QueryNode> node) {
  std::lock_guard<std::mutex> lk(mu_);
  // Follow every serving collection's channels (deletes + ticks) so the
  // node can immediately host sealed segments of any shard.
  for (const auto& [collection, serving] : serving_) {
    for (ShardId shard = 0; shard < serving.num_shards; ++shard) {
      node->AddChannel(collection, shard, serving.schema, /*primary=*/false);
    }
  }
  nodes_.push_back(std::move(node));
  topo_epoch_.fetch_add(1, std::memory_order_acq_rel);
}

// --- PlacementHost -------------------------------------------------------

std::vector<std::pair<NodeId, uint64_t>> QueryCoordinator::RepairCandidates() {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<std::pair<NodeId, uint64_t>> out;
  out.reserve(nodes_.size());
  for (const auto& node : nodes_) {
    if (draining_.count(node->id()) > 0) continue;
    out.emplace_back(node->id(), node->MemoryBytes());
  }
  return out;
}

Status QueryCoordinator::LoadReplica(
    NodeId target, const SegmentMeta& meta,
    std::shared_ptr<const CollectionSchema> schema) {
  std::shared_ptr<QueryNode> node;
  {
    std::lock_guard<std::mutex> lk(mu_);
    node = NodeById(target);
    if (node == nullptr || draining_.count(target) > 0) {
      return Status::Unavailable("repair target gone or draining");
    }
  }
  // The load itself runs outside mu_: object-store I/O must not block
  // routing or failover.
  return node->LoadSealedSegment(meta, std::move(schema));
}

void QueryCoordinator::ReleaseReplica(NodeId target, CollectionId collection,
                                      SegmentId segment) {
  std::shared_ptr<QueryNode> node;
  {
    std::lock_guard<std::mutex> lk(mu_);
    node = NodeById(target);
  }
  if (node != nullptr) node->ReleaseSegment(collection, segment);
}

// --- Scale-down (drain) --------------------------------------------------

Status QueryCoordinator::RemoveQueryNode(NodeId id) {
  std::shared_ptr<QueryNode> victim;
  {
    std::lock_guard<std::mutex> lk(mu_);
    victim = NodeById(id);
    if (victim == nullptr) return Status::NotFound("query node");
    size_t live = 0;
    for (const auto& node : nodes_) {
      if (draining_.count(node->id()) == 0) ++live;
    }
    if (live <= 1 || draining_.count(id) > 0) {
      return Status::InvalidArgument("cannot remove the last query node");
    }
    // Phase 1: mark draining (new placements skip it; PlanFor keeps routing
    // to it) and hand primary channels to survivors. The epoch bump fences
    // out any repair planned against the pre-drain topology.
    draining_.insert(id);
    topo_epoch_.fetch_add(1, std::memory_order_acq_rel);
    for (auto& [collection, serving] : serving_) {
      for (auto& [shard, owner] : serving.channel_owner) {
        if (owner != id) continue;
        for (const auto& node : nodes_) {
          if (draining_.count(node->id()) > 0) continue;
          node->PromoteChannel(collection, shard);
          victim->DemoteChannel(collection, shard);
          owner = node->id();
          break;
        }
      }
    }
  }

  // Phase 2: drain sealed replicas WITHOUT holding mu_ — searches keep
  // routing to the victim until every affected segment serves elsewhere
  // (paper: "a query node can be removed once other query nodes load the
  // indexes for the segments it handles").
  Status drained = placement_->DrainNode(id);
  if (!drained.ok()) {
    std::lock_guard<std::mutex> lk(mu_);
    draining_.erase(id);
    topo_epoch_.fetch_add(1, std::memory_order_acq_rel);
    MANU_LOG_WARN << "drain of query node " << id
                  << " interrupted: " << drained.ToString();
    return drained;
  }

  // Phase 3: nothing routes to the victim anymore; retire it.
  {
    std::lock_guard<std::mutex> lk(mu_);
    for (const auto& [collection, serving] : serving_) {
      victim->RemoveCollection(collection);
    }
    victim->Stop();
    std::erase_if(nodes_, [&](const auto& n) { return n->id() == id; });
    draining_.erase(id);
    topo_epoch_.fetch_add(1, std::memory_order_acq_rel);
  }
  if (ctx_.leases != nullptr) ctx_.leases->Deregister(id);
  MANU_LOG_INFO << "query node " << id << " removed (scale-down)";
  return Status::OK();
}

Status QueryCoordinator::RecoverDeadNodeLocked(NodeId id) {
  const int64_t t0 = NowMicros();
  auto victim = NodeById(id);
  if (victim == nullptr) return Status::NotFound("query node");
  if (nodes_.size() <= 1) {
    return Status::InvalidArgument("cannot kill the last query node");
  }
  // Fence first: a repair planned against the pre-failover topology must
  // not commit (the epoch is re-checked under the placement table mutex,
  // which OnNodeGone below also takes — no commit can slip between).
  topo_epoch_.fetch_add(1, std::memory_order_acq_rel);
  // Crash: no cooperation from the victim.
  victim->Stop();
  std::erase_if(nodes_, [&](const auto& n) { return n->id() == id; });
  draining_.erase(id);

  for (auto& [collection, serving] : serving_) {
    for (auto& [shard, owner] : serving.channel_owner) {
      if (owner != id) continue;
      auto target = nodes_[static_cast<size_t>(shard) % nodes_.size()];
      target->PromoteChannel(collection, shard);
      owner = target->id();
    }
  }

  // Strip the dead node from every replica group. Groups with surviving
  // replicas keep serving untouched — the reconciler restores their
  // redundancy within its interval. Groups at ZERO live replicas are
  // reloaded synchronously here: coverage cannot wait for a background
  // pass.
  for (const auto& entry : placement_->OnNodeGone(id)) {
    auto it = serving_.find(entry.meta.collection);
    if (it == serving_.end()) continue;
    // Prefer the shard's channel owner: the promoted primary replays the
    // channel from the beginning, and hosting the sealed copy there lets
    // the sealed-twin-wins rule suppress the replayed growing twin
    // instead of serving the rows twice from two nodes.
    std::shared_ptr<QueryNode> target;
    auto primary_it = it->second.channel_owner.find(entry.meta.shard);
    if (primary_it != it->second.channel_owner.end()) {
      target = NodeById(primary_it->second);
    }
    if (target == nullptr) target = LeastLoadedLocked();
    if (target == nullptr) continue;
    Status st = target->LoadSealedSegment(entry.meta, entry.schema);
    if (st.ok()) {
      placement_->RecordServing(entry.meta.collection, entry.meta.id,
                                target->id(), entry.target_version);
    } else {
      // Left unroutable: PlanFor accounts it as lost coverage and the
      // reconciler keeps retrying the repair from the object store.
      MANU_LOG_ERROR << "recovery reload of segment " << entry.meta.id
                     << " failed: " << st.ToString();
    }
  }
  // Recovery duration: promotion + segment reloads. The promoted channels
  // keep replaying asynchronously afterwards; their progress is gated by
  // the re-armed service_ts, not this histogram.
  MetricsRegistry::Global()
      .GetHistogram("query_coord.recovery_us")
      ->Observe(static_cast<double>(NowMicros() - t0));
  return Status::OK();
}

Status QueryCoordinator::KillQueryNode(NodeId id) {
  std::lock_guard<std::mutex> lk(mu_);
  MANU_RETURN_NOT_OK(RecoverDeadNodeLocked(id));
  MetricsRegistry::Global().GetCounter("query_coord.nodes_killed")->Add(1);
  // Manual kill: drop the lease too, so the watchdog does not fire a second
  // (NotFound) recovery for the same node.
  if (ctx_.leases != nullptr) ctx_.leases->Deregister(id);
  MANU_LOG_INFO << "query node " << id << " killed and recovered";
  return Status::OK();
}

Status QueryCoordinator::OnNodeDead(NodeId id) {
  std::lock_guard<std::mutex> lk(mu_);
  MANU_RETURN_NOT_OK(RecoverDeadNodeLocked(id));
  MANU_LOG_INFO << "query node " << id
                << " lease expired; channels and segments reassigned";
  return Status::OK();
}

Status QueryCoordinator::CrashNode(NodeId id) {
  std::lock_guard<std::mutex> lk(mu_);
  auto victim = NodeById(id);
  if (victim == nullptr) return Status::NotFound("query node");
  // Stop the pump only: the node stays registered as a channel/segment
  // owner and its lease keeps counting down. Detection and recovery are the
  // watchdog's job.
  victim->Stop();
  MANU_LOG_INFO << "query node " << id << " crashed (abrupt, no recovery)";
  return Status::OK();
}

size_t QueryCoordinator::NumQueryNodes() const {
  std::lock_guard<std::mutex> lk(mu_);
  return nodes_.size();
}

std::vector<std::shared_ptr<QueryNode>> QueryCoordinator::Nodes() const {
  std::lock_guard<std::mutex> lk(mu_);
  return nodes_;
}

Status QueryCoordinator::LoadCollection(const CollectionMeta& meta) {
  std::lock_guard<std::mutex> lk(mu_);
  if (nodes_.empty()) return Status::Unavailable("no query nodes");
  CollectionServing& serving = serving_[meta.id];
  serving.schema = std::make_shared<CollectionSchema>(meta.schema);
  serving.index_params = meta.index_params;
  serving.num_shards = meta.num_shards;
  for (ShardId shard = 0; shard < meta.num_shards; ++shard) {
    auto primary = nodes_[static_cast<size_t>(shard) % nodes_.size()];
    serving.channel_owner[shard] = primary->id();
    for (const auto& node : nodes_) {
      node->AddChannel(meta.id, shard, serving.schema,
                       /*primary=*/node == primary);
    }
  }

  LogEntry announce;
  announce.type = LogEntryType::kLoadCollection;
  announce.timestamp = ctx_.tso->Allocate();
  announce.collection = meta.id;
  ctx_.mq->Publish(CoordChannelName(), std::move(announce));
  return Status::OK();
}

Status QueryCoordinator::ReleaseCollection(CollectionId collection) {
  std::lock_guard<std::mutex> lk(mu_);
  serving_.erase(collection);
  placement_->RemoveCollection(collection);
  // Announced via log; nodes release asynchronously (Section 3.3's example
  // of log-based coordination) — here we also release synchronously since
  // nodes are in-process.
  LogEntry announce;
  announce.type = LogEntryType::kReleaseCollection;
  announce.timestamp = ctx_.tso->Allocate();
  announce.collection = collection;
  ctx_.mq->Publish(CoordChannelName(), std::move(announce));
  for (const auto& node : nodes_) node->RemoveCollection(collection);
  return Status::OK();
}

std::vector<std::shared_ptr<QueryNode>> QueryCoordinator::NodesFor(
    CollectionId collection) const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<std::shared_ptr<QueryNode>> out;
  auto it = serving_.find(collection);
  if (it == serving_.end()) return out;
  std::set<NodeId> involved;
  for (const auto& [_, owner] : it->second.channel_owner) {
    involved.insert(owner);
  }
  placement_->ForEachServing(
      collection,
      [&](SegmentId, const std::vector<ReplicaState>& replicas) {
        for (const ReplicaState& replica : replicas) {
          involved.insert(replica.node);
        }
      });
  for (const auto& node : nodes_) {
    if (involved.count(node->id()) > 0) out.push_back(node);
  }
  return out;
}

namespace {

/// splitmix64 finalizer: turns the route counter into an independent draw.
uint64_t MixRouteSeed(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

int64_t QueryCoordinator::RouteLoadScore(
    const std::shared_ptr<QueryNode>& node) const {
  NodeLoad load;
  bool fresh = false;
  if (ctx_.leases != nullptr) {
    load = ctx_.leases->LoadOf(node->id());
    fresh = load.updated_ms > 0 &&
            NowMs() - load.updated_ms <= ctx_.leases->ttl_ms();
  }
  if (!fresh) load = node->LoadSnapshot();
  // Outstanding requests dominate; EWMA service time breaks ties between
  // equally-backlogged nodes (a slow node at depth n is worse than a fast
  // one at depth n).
  return load.inflight * 1'000'000 + load.ewma_latency_us;
}

QueryCoordinator::Plan QueryCoordinator::PlanFor(
    CollectionId collection) const {
  std::lock_guard<std::mutex> lk(mu_);
  Plan plan;
  auto it = serving_.find(collection);
  if (it == serving_.end()) return plan;
  const CollectionServing& serving = it->second;
  std::vector<NodeRoute>& routes = plan.routes;

  std::map<NodeId, size_t> route_index;
  auto route_for = [&](NodeId id) -> NodeRoute* {
    auto found = route_index.find(id);
    if (found != route_index.end()) return &routes[found->second];
    auto node = NodeById(id);
    if (node == nullptr) return nullptr;
    route_index[id] = routes.size();
    routes.push_back(NodeRoute{std::move(node), 0, {}});
    return &routes.back();
  };

  // Channel owners are always in the plan: growing segments and the
  // consistency gate live only there.
  for (const auto& [shard, owner] : serving.channel_owner) {
    (void)route_for(owner);
  }

  // Power-of-two-choices per sealed segment: two deterministic
  // pseudo-random candidates from the replica set, lower load wins.
  // Against always-least-loaded this avoids herding every segment of a
  // plan onto the momentarily-idlest node. A segment with NO live replica
  // is not dropped: it is reported on the plan so the proxy degrades
  // coverage (or fails a strict search) instead of losing rows silently.
  placement_->ForEachServing(
      collection,
      [&](SegmentId segment, const std::vector<ReplicaState>& replicas) {
        std::vector<NodeId> live;
        live.reserve(replicas.size());
        for (const ReplicaState& replica : replicas) {
          if (NodeById(replica.node) != nullptr) live.push_back(replica.node);
        }
        if (live.empty()) {
          ++plan.unroutable;
          return;
        }
        NodeId chosen = live[0];
        if (live.size() > 1) {
          const uint64_t draw = MixRouteSeed(
              route_seq_.fetch_add(1, std::memory_order_relaxed) ^
              (static_cast<uint64_t>(segment) << 32));
          const size_t a = static_cast<size_t>(draw % live.size());
          const size_t b = static_cast<size_t>(
              (a + 1 + (draw >> 32) % (live.size() - 1)) % live.size());
          chosen = RouteLoadScore(NodeById(live[a])) <=
                           RouteLoadScore(NodeById(live[b]))
                       ? live[a]
                       : live[b];
        }
        NodeRoute* route = route_for(chosen);
        if (route != nullptr) route->sealed_filter.push_back(segment);
      });

  if (plan.unroutable > 0) {
    MetricsRegistry::Global()
        .GetCounter("placement.unroutable_segments")
        ->Add(plan.unroutable);
  }
  for (NodeRoute& route : routes) {
    std::sort(route.sealed_filter.begin(), route.sealed_filter.end());
    route.weight = static_cast<int64_t>(route.sealed_filter.size()) +
                   route.node->NumGrowingOnlySegments(collection);
  }
  return plan;
}

void QueryCoordinator::OnSegmentReady(const SegmentMeta& meta) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = serving_.find(meta.collection);
  if (it == serving_.end()) return;
  CollectionServing& serving = it->second;

  // Pick the replica set: existing replicas reload in place (new index
  // version — one node at a time, so the group is rolling by
  // construction); then the shard's channel owner; missing replicas go to
  // the least-loaded remaining non-draining nodes.
  std::vector<std::shared_ptr<QueryNode>> targets;
  for (NodeId id : placement_->ServingNodes(meta.collection, meta.id)) {
    auto node = NodeById(id);
    if (node != nullptr) targets.push_back(node);
  }
  size_t pool = 0;
  for (const auto& node : nodes_) {
    if (draining_.count(node->id()) == 0) ++pool;
  }
  const size_t want = std::max<size_t>(
      1, std::min<size_t>(static_cast<size_t>(ctx_.config.replica_factor),
                          std::max<size_t>(pool, 1)));
  // The channel owner hosts the growing twin and sits in every proxy
  // fan-out set for this collection, so loading the sealed segment there
  // makes the growing->sealed handoff atomic for in-flight searches: a
  // search that fanned out before this handoff still reaches a node that
  // serves the rows, either from the growing twin (pre-load) or from the
  // sealed copy (the sealed-twin-wins rule covers the overlap). Loading
  // only onto some other node would let DropGrowing below race ahead of a
  // search already queued on the primary, losing the segment's rows from
  // that search entirely.
  auto primary_it = serving.channel_owner.find(meta.shard);
  if (primary_it != serving.channel_owner.end() && targets.size() < want) {
    auto primary = NodeById(primary_it->second);
    if (primary != nullptr &&
        std::find(targets.begin(), targets.end(), primary) == targets.end()) {
      targets.push_back(primary);
    }
  }
  std::vector<std::shared_ptr<QueryNode>> candidates;
  for (const auto& node : nodes_) {
    if (draining_.count(node->id()) == 0) candidates.push_back(node);
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const auto& a, const auto& b) {
              return a->MemoryBytes() < b->MemoryBytes();
            });
  for (const auto& node : candidates) {
    if (targets.size() >= want) break;
    if (std::find(targets.begin(), targets.end(), node) == targets.end()) {
      targets.push_back(node);
    }
  }
  if (targets.empty()) return;

  std::vector<NodeId> loaded;
  for (const auto& target : targets) {
    Status st = target->LoadSealedSegment(meta, serving.schema);
    if (!st.ok()) {
      MANU_LOG_ERROR << "segment load failed: " << st.ToString();
      continue;
    }
    loaded.push_back(target->id());
  }
  // Nothing loaded => do not register the segment at all: the growing twin
  // keeps serving its rows, and registering an empty group would both
  // double-count (growing + "sealed") and report false unroutability.
  if (loaded.empty()) return;
  placement_->SetDesired(meta, serving.schema, ctx_.config.replica_factor);
  const int32_t version = PlacementTargetVersion(meta);
  for (NodeId id : loaded) {
    placement_->RecordServing(meta.collection, meta.id, id, version);
  }
  // Every node drops the growing twin (the loader already did).
  for (const auto& node : nodes_) {
    node->DropGrowing(meta.collection, meta.id);
  }
  // If this segment is a compaction result, its inputs can go now.
  auto pending = serving.pending_drops.find(meta.id);
  if (pending != serving.pending_drops.end()) {
    ReleaseSegmentsLocked(meta.collection, pending->second);
    serving.pending_drops.erase(pending);
  }
}

void QueryCoordinator::ReleaseSegmentsLocked(
    CollectionId collection, const std::vector<SegmentId>& segments) {
  for (SegmentId segment : segments) {
    for (NodeId id : placement_->ServingNodes(collection, segment)) {
      auto node = NodeById(id);
      if (node != nullptr) node->ReleaseSegment(collection, segment);
    }
    placement_->Remove(collection, segment);
  }
}

Status QueryCoordinator::Rebalance() {
  // Top up replica groups against the current fleet first (a fresh node is
  // useless to a group that is merely under-replicated unless someone adds
  // the replica), then equalize per-node replica counts. Both run through
  // the reconciler so every move is epoch-fenced and survivor-first.
  placement_->ReconcileOnce();
  return placement_->RebalanceNow();
}

}  // namespace manu
