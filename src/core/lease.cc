#include "core/lease.h"

#include <cstdlib>

#include "common/failpoint.h"
#include "common/metrics.h"

namespace manu {

namespace {

std::string NodeLeaseKey(NodeId node) {
  return "lease/node/" + std::to_string(node);
}

constexpr char kInstanceEpochKey[] = "lease/instance";

Status FencedError(const std::string& what, int64_t have, int64_t want) {
  MetricsRegistry::Global().GetCounter("lease.fencing_rejections")->Add();
  return Status::Aborted(what + " fenced: epoch " + std::to_string(have) +
                         " superseded by " + std::to_string(want));
}

}  // namespace

LeaseManager::LeaseManager(MetaStore* meta, int64_t ttl_ms)
    : meta_(meta), ttl_ms_(ttl_ms) {}

int64_t LeaseManager::BumpPersistedEpoch(const std::string& key) {
  for (;;) {
    int64_t epoch = 0;
    int64_t revision = 0;
    auto current = meta_->Get(key);
    if (current.ok()) {
      epoch = std::atoll(current.value().value.c_str());
      revision = current.value().mod_revision;
    }
    auto cas = meta_->CompareAndSwap(key, revision, std::to_string(epoch + 1));
    if (cas.ok()) return epoch + 1;
    // Lost the race to a concurrent bumper; re-read and try again.
  }
}

int64_t LeaseManager::PersistedEpoch(const std::string& key) const {
  auto current = meta_->Get(key);
  if (!current.ok()) return 0;
  return std::atoll(current.value().value.c_str());
}

int64_t LeaseManager::Register(NodeId node, const std::string& role) {
  const int64_t epoch = BumpPersistedEpoch(NodeLeaseKey(node));
  std::lock_guard<std::mutex> lk(mu_);
  nodes_[node] = LeaseInfo{node, role, epoch, NowMs(), false};
  return epoch;
}

Status LeaseManager::Renew(NodeId node, int64_t epoch) {
  if (FailPointRegistry::AnyArmed()) {
    const std::string site = "lease.heartbeat." + std::to_string(node);
    Status dropped = FailPointRegistry::Global().Evaluate(site.c_str());
    if (!dropped.ok()) return dropped;  // Heartbeat lost (partition model).
  }
  const int64_t persisted = PersistedEpoch(NodeLeaseKey(node));
  if (persisted != epoch) {
    return Status::Aborted("lease renew rejected: node " +
                           std::to_string(node) + " epoch " +
                           std::to_string(epoch) + " superseded by " +
                           std::to_string(persisted));
  }
  std::lock_guard<std::mutex> lk(mu_);
  auto it = nodes_.find(node);
  if (it == nodes_.end() || it->second.dead) {
    return Status::Aborted("lease renew rejected: node " +
                           std::to_string(node) + " not live");
  }
  it->second.last_renew_ms = NowMs();
  return Status::OK();
}

Status LeaseManager::Renew(NodeId node, int64_t epoch, const NodeLoad& load) {
  MANU_RETURN_NOT_OK(Renew(node, epoch));
  std::lock_guard<std::mutex> lk(mu_);
  NodeLoad stamped = load;
  stamped.updated_ms = NowMs();
  loads_[node] = stamped;
  return Status::OK();
}

NodeLoad LeaseManager::LoadOf(NodeId node) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = loads_.find(node);
  return it == loads_.end() ? NodeLoad{} : it->second;
}

Status LeaseManager::CheckEpoch(NodeId node, int64_t epoch) {
  const int64_t persisted = PersistedEpoch(NodeLeaseKey(node));
  if (persisted != epoch) {
    return FencedError("node " + std::to_string(node), epoch, persisted);
  }
  return Status::OK();
}

int64_t LeaseManager::Revoke(NodeId node) {
  const int64_t epoch = BumpPersistedEpoch(NodeLeaseKey(node));
  std::lock_guard<std::mutex> lk(mu_);
  auto it = nodes_.find(node);
  if (it != nodes_.end()) it->second.dead = true;
  return epoch;
}

void LeaseManager::Deregister(NodeId node) {
  std::lock_guard<std::mutex> lk(mu_);
  nodes_.erase(node);
  loads_.erase(node);
}

std::vector<LeaseInfo> LeaseManager::ExpiredLeases(int64_t now_ms) const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<LeaseInfo> expired;
  for (const auto& [_, info] : nodes_) {
    if (!info.dead && now_ms - info.last_renew_ms > ttl_ms_) {
      expired.push_back(info);
    }
  }
  return expired;
}

std::vector<LeaseInfo> LeaseManager::Snapshot() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<LeaseInfo> all;
  all.reserve(nodes_.size());
  for (const auto& [_, info] : nodes_) all.push_back(info);
  return all;
}

int64_t LeaseManager::AcquireInstanceEpoch() {
  return BumpPersistedEpoch(kInstanceEpochKey);
}

Status LeaseManager::CheckInstanceEpoch(int64_t epoch) {
  const int64_t persisted = PersistedEpoch(kInstanceEpochKey);
  if (persisted != epoch) return FencedError("instance", epoch, persisted);
  return Status::OK();
}

}  // namespace manu
