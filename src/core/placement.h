#ifndef MANU_CORE_PLACEMENT_H_
#define MANU_CORE_PLACEMENT_H_

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "common/status.h"
#include "core/collection_meta.h"
#include "core/config.h"

namespace manu {

/// Max declared index version across a segment meta's vector and filter
/// indexes — the replica group's rolling-reload target.
int32_t PlacementTargetVersion(const SegmentMeta& meta);

/// One serving replica of a sealed segment: which node serves it and the
/// index version it last loaded. Version skew against the group's target
/// is what drives rolling reloads after an index-version bump.
struct ReplicaState {
  NodeId node = kInvalidNodeId;
  int32_t version = 0;
};

/// Desired vs. actual state of one sealed segment's replica group — a row
/// of the placement table. `desired` is the configured replica target
/// (replica_factor at placement time); the reconciler clamps it to the
/// live node count per pass, so a shrunken fleet is not treated as
/// permanently under-replicated.
struct SegmentPlacement {
  SegmentMeta meta;  ///< Repair source: binlog + index paths, shard, rows.
  std::shared_ptr<const CollectionSchema> schema;
  int32_t desired = 1;
  /// Max declared index version in `meta` — replicas below it are stale.
  int32_t target_version = 0;
  std::vector<ReplicaState> serving;
};

/// The actions a reconciler decision needs from the serving layer,
/// implemented by QueryCoordinator. Calls may take the coordinator's lock;
/// PlacementManager therefore NEVER invokes them while holding its own
/// table mutex (lock order: coordinator -> placement table, no cycles).
class PlacementHost {
 public:
  virtual ~PlacementHost() = default;

  /// Live, non-draining nodes with their memory footprint — the candidate
  /// pool for repair targets (the reconciler picks least-loaded first).
  virtual std::vector<std::pair<NodeId, uint64_t>> RepairCandidates() = 0;

  /// Loads a replica of `meta` onto `target` from the object store.
  /// Blocking; returns the outcome of the load.
  virtual Status LoadReplica(NodeId target, const SegmentMeta& meta,
                             std::shared_ptr<const CollectionSchema> schema)
      = 0;

  /// Releases the replica on `target` (move sources, stale copies, undo of
  /// a repair that lost its epoch race).
  virtual void ReleaseReplica(NodeId target, CollectionId collection,
                              SegmentId segment) = 0;

  /// Monotone topology epoch, bumped by every failover / scale event. A
  /// repair planned under epoch E commits only if the epoch is still E —
  /// the fence that keeps a stale reconciler decision from fighting an
  /// in-progress failover or drain.
  virtual int64_t TopologyEpoch() const = 0;
};

/// Reconciliation-driven placement manager (ROADMAP item 3; Taurus
/// discipline: replicate *serving state*, not storage — a lost replica is
/// repaired cheaply from the shared object store).
///
/// The table half is a passive desired-state store the query coordinator
/// reads and writes under its own lock (only the table mutex is taken, no
/// host callbacks). The active half — ReconcileOnce / DrainNode /
/// RebalanceNow and the optional background loop — continuously diffs
/// desired vs. actual serving state and issues bounded-concurrency repair
/// ops through the host, each fenced by the topology epoch captured at
/// planning time.
///
/// Triggers handled:
///  - node loss:   the coordinator strips the dead node (OnNodeGone) and
///                 synchronously restores *coverage* for groups that hit
///                 zero replicas; the reconciler restores *redundancy*
///                 (groups below desired) within the reconcile interval.
///  - scale-up:    a new node widens the candidate pool; the reconciler
///                 tops groups up to desired and RebalanceNow spreads
///                 replicas until per-node counts differ by at most one.
///  - scale-down:  DrainNode generalizes the survivor-before-victim rule:
///                 every affected segment is loaded (and serving) elsewhere
///                 BEFORE the victim's copy is released — zero coverage dip
///                 for in-flight searches.
///  - version bump: replicas below the group's target index version are
///                 reloaded at most ONE per group per pass (rolling), so a
///                 group never has all replicas reloading at once.
class PlacementManager {
 public:
  PlacementManager(const ManuConfig& config, PlacementHost* host);
  ~PlacementManager();

  /// Starts the background reconciler when
  /// config.placement_reconcile_interval_ms > 0 (0 = manual ReconcileOnce
  /// only — the defaults-off posture).
  void Start();
  void Stop();

  // --- Desired-state table (coordinator-facing; table mutex only) ---

  /// Registers/updates the desired state of a sealed segment: latest meta
  /// (including index versions), schema, and the replica target. Existing
  /// serving records are kept.
  void SetDesired(const SegmentMeta& meta,
                  std::shared_ptr<const CollectionSchema> schema,
                  int32_t desired);
  /// Records `node` as serving the segment at `version` (upserts the
  /// replica record). No-op if the segment is not in the table.
  void RecordServing(CollectionId collection, SegmentId segment, NodeId node,
                     int32_t version);
  /// Removes `node` from the segment's serving set.
  void RecordReleased(CollectionId collection, SegmentId segment,
                      NodeId node);
  /// Drops the segment from the table (release / compaction input).
  void Remove(CollectionId collection, SegmentId segment);
  void RemoveCollection(CollectionId collection);
  /// Node vanished (crash / failover): strips it from every serving set and
  /// returns the entries left with ZERO replicas — the coordinator reloads
  /// those synchronously (coverage), the reconciler handles the rest
  /// (redundancy).
  std::vector<SegmentPlacement> OnNodeGone(NodeId node);

  // --- Reads ---

  std::vector<NodeId> ServingNodes(CollectionId collection,
                                   SegmentId segment) const;
  bool IsServing(CollectionId collection, SegmentId segment) const;
  std::vector<SegmentPlacement> CollectionSnapshot(
      CollectionId collection) const;
  /// Iterates a collection's (segment, serving set) rows under the table
  /// mutex without copying metas — the routing hot path. The callback must
  /// not call back into the placement table.
  void ForEachServing(
      CollectionId collection,
      const std::function<void(SegmentId, const std::vector<ReplicaState>&)>&
          fn) const;
  /// Segments with fewer live-serving replicas than (clamped) desired,
  /// given the current candidate pool size. Also refreshes the
  /// placement.under_replicated gauge.
  int64_t UnderReplicatedCount() const;

  // --- Reconciliation (serialized by an internal repair mutex) ---

  /// One reconcile pass: prunes replicas on vanished nodes, repairs
  /// zero-replica groups first, tops up under-replicated groups, then
  /// rolling-reloads version-stale replicas (<= 1 per group). Repairs run
  /// with bounded concurrency (placement_repair_concurrency) and commit
  /// only if the topology epoch has not moved since planning. Returns the
  /// number of repair ops that committed.
  int64_t ReconcileOnce();

  /// Drains every replica off `victim`: segments it serves are loaded (and
  /// verified serving) on other nodes FIRST, then the victim's copy is
  /// released. Fails with Unavailable if the topology changes mid-drain
  /// (the caller may retry); the victim keeps serving whatever was not yet
  /// moved, so a failed drain never dips coverage either.
  Status DrainNode(NodeId victim);

  /// Moves replicas from the most- to the least-loaded node until per-node
  /// replica counts differ by at most one (scale-up spread). Each move is
  /// load-then-release and epoch-fenced like any repair.
  Status RebalanceNow();

 private:
  enum class RepairKind { kAdd, kReload, kMove };

  struct RepairOp {
    RepairKind kind = RepairKind::kAdd;
    SegmentMeta meta;
    std::shared_ptr<const CollectionSchema> schema;
    int32_t version = 0;
    NodeId target = kInvalidNodeId;
    /// kMove: replica to release after the target serves.
    NodeId source = kInvalidNodeId;
    const char* trigger = "repair";
  };

  /// Executes `ops` with bounded concurrency; commits each against
  /// `planned_epoch`. `deadline_ms` > 0 stops claiming new ops once it
  /// elapses (drain bound). Returns committed count.
  int64_t ExecuteRepairs(std::vector<RepairOp> ops, int64_t planned_epoch,
                         int64_t deadline_ms);
  /// Runs one op end-to-end (load -> commit -> optional source release).
  bool ExecuteOne(const RepairOp& op, int64_t planned_epoch);
  /// Commit point: records the repaired replica iff the epoch is unchanged
  /// and the entry still exists; false => caller must undo the load.
  bool CommitRepair(const RepairOp& op, int64_t planned_epoch);
  void RunLoop();
  int64_t UnderReplicatedLocked(size_t candidates) const;

  const ManuConfig config_;
  PlacementHost* host_;

  mutable std::mutex table_mu_;
  /// (collection, segment) -> placement row.
  std::map<std::pair<CollectionId, SegmentId>, SegmentPlacement> table_;

  /// Serializes reconcile passes, drains and rebalances: one repair driver
  /// at a time, so two planners never fight over the same group.
  std::mutex repair_mu_;

  std::atomic<bool> stop_{false};
  std::thread thread_;
};

}  // namespace manu

#endif  // MANU_CORE_PLACEMENT_H_
