#include "core/admission.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/metrics.h"

namespace manu {

namespace {

// Pressure smoothing time constant: a sample dt ms apart moves the EWMA by
// alpha = clamp(dt / 100ms, 0.05, 1.0). Tests sleep ~120 ms after forcing a
// probe value to snap the smoothed pressure to it.
constexpr double kSmoothTauUs = 100'000.0;
// Probe sample cadence: don't re-poll the query-node fleet more often than
// this per admission decision.
constexpr int64_t kProbeCacheUs = 2'000;
// Stages release when pressure falls below engage_threshold * this.
constexpr double kHysteresis = 0.85;

}  // namespace

AdmissionController::AdmissionController(const ManuConfig& config)
    : max_inflight_(config.admission_max_inflight),
      tenant_qps_(config.admission_tenant_qps),
      tenant_burst_(config.admission_tenant_burst > 0
                        ? config.admission_tenant_burst
                        : std::max(1.0, config.admission_tenant_qps)),
      degrade_pressure_(config.shed_degrade_pressure),
      low_priority_pressure_(config.shed_low_priority_pressure),
      reject_pressure_(config.shed_reject_pressure),
      retry_after_ms_(std::max<int64_t>(1, config.shed_retry_after_ms)) {}

void AdmissionController::SetPressureProbe(std::function<double()> probe) {
  std::lock_guard<std::mutex> lock(mu_);
  probe_ = std::move(probe);
  probe_cache_us_ = 0;  // Next Admit re-samples immediately.
}

int32_t AdmissionController::UpdatePressureLocked(int64_t now_us) {
  if (probe_ && now_us - probe_cache_us_ >= kProbeCacheUs) {
    probe_cache_ = std::clamp(probe_(), 0.0, 1.0);
    probe_cache_us_ = now_us;
  }
  double raw = probe_cache_;
  if (max_inflight_ > 0) {
    raw = std::max(raw, static_cast<double>(
                            inflight_.load(std::memory_order_relaxed)) /
                            static_cast<double>(max_inflight_));
  }
  raw = std::clamp(raw, 0.0, 1.0);

  if (smoothed_at_us_ == 0) {
    smoothed_ = raw;
  } else {
    double alpha = std::clamp(
        static_cast<double>(now_us - smoothed_at_us_) / kSmoothTauUs, 0.05,
        1.0);
    smoothed_ += alpha * (raw - smoothed_);
  }
  smoothed_at_us_ = now_us;
  pressure_bp_.store(static_cast<int64_t>(smoothed_ * 10000.0),
                     std::memory_order_relaxed);

  const double thresholds[3] = {degrade_pressure_, low_priority_pressure_,
                                reject_pressure_};
  int32_t stage = stage_.load(std::memory_order_relaxed);
  // Engage upward through every threshold we now exceed; release downward
  // only once pressure drops below the hysteresis band of the current stage.
  while (stage < 3 && smoothed_ >= thresholds[stage]) ++stage;
  while (stage > 0 && smoothed_ < thresholds[stage - 1] * kHysteresis) {
    --stage;
  }
  int32_t prev = stage_.exchange(stage, std::memory_order_relaxed);
  if (stage != prev) {
    MetricsRegistry::Global().GetGauge("admission.stage")->Set(stage);
  }
  for (int32_t s = prev + 1; s <= stage; ++s) {
    int64_t expected = 0;
    stage_first_ms_[s].compare_exchange_strong(expected, NowMs(),
                                               std::memory_order_relaxed);
  }
  return stage;
}

AdmitDecision AdmissionController::Admit(const std::string& tenant,
                                         int32_t priority) {
  const int64_t now_us = NowMicros();
  AdmitDecision decision;
  {
    std::lock_guard<std::mutex> lock(mu_);
    decision.stage = UpdatePressureLocked(now_us);

    // Per-tenant token bucket: rate fairness is enforced at every stage so
    // a hot tenant cannot monopolize whatever capacity the ladder leaves.
    if (tenant_qps_ > 0) {
      TokenBucket& bucket = buckets_[tenant];
      if (bucket.last_refill_us == 0) {
        bucket.tokens = tenant_burst_;
      } else {
        bucket.tokens = std::min(
            tenant_burst_,
            bucket.tokens + tenant_qps_ *
                                static_cast<double>(now_us -
                                                    bucket.last_refill_us) /
                                1e6);
      }
      bucket.last_refill_us = now_us;
      if (bucket.tokens < 1.0) {
        decision.action = AdmitAction::kShed;
        decision.reason = "tenant_throttle";
        // Hint when this tenant's bucket will hold a whole token again.
        decision.retry_after_ms = std::max(
            retry_after_ms_,
            static_cast<int64_t>(
                std::ceil((1.0 - bucket.tokens) / tenant_qps_ * 1e3)));
        MetricsRegistry::Global().GetCounter("shed.tenant_throttles")->Add();
        return decision;
      }
      bucket.tokens -= 1.0;
    }

    if (decision.stage >= 3) {
      decision.action = AdmitAction::kReject;
      decision.reason = "reject";
      decision.retry_after_ms = retry_after_ms_;
    } else if (decision.stage >= 2 && priority > 0) {
      decision.action = AdmitAction::kShed;
      decision.reason = "low_priority_shed";
      decision.retry_after_ms = retry_after_ms_;
    } else if (decision.stage >= 1) {
      decision.action = AdmitAction::kDegrade;
      decision.reason = "degrade";
    }
  }

  if (decision.admitted() && max_inflight_ > 0) {
    // Optimistic reserve; back out if we hit the ceiling.
    int64_t inflight = inflight_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (inflight > max_inflight_) {
      inflight_.fetch_sub(1, std::memory_order_relaxed);
      decision.action = AdmitAction::kShed;
      decision.reason = "inflight_ceiling";
      decision.retry_after_ms = retry_after_ms_;
    }
  } else if (decision.admitted()) {
    inflight_.fetch_add(1, std::memory_order_relaxed);
  }
  return decision;
}

void AdmissionController::Release() {
  inflight_.fetch_sub(1, std::memory_order_relaxed);
}

int64_t AdmissionController::StageFirstEngagedMs(int32_t stage) const {
  if (stage < 1 || stage > 3) return 0;
  return stage_first_ms_[stage].load(std::memory_order_relaxed);
}

Status AdmissionController::ShedStatus(const std::string& what, int32_t stage,
                                       int64_t retry_after_ms) {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "%s overloaded (brownout stage %d): retry-after-ms=%lld",
                what.c_str(), stage,
                static_cast<long long>(retry_after_ms));
  return Status::ResourceExhausted(buf);
}

int64_t AdmissionController::RetryAfterHintMs(const Status& st) {
  const std::string& msg = st.message();
  static constexpr char kKey[] = "retry-after-ms=";
  size_t pos = msg.find(kKey);
  if (pos == std::string::npos) return -1;
  const char* digits = msg.c_str() + pos + sizeof(kKey) - 1;
  char* end = nullptr;
  long long value = std::strtoll(digits, &end, 10);
  if (end == digits || value < 0) return -1;
  return value;
}

}  // namespace manu
