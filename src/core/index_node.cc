#include "core/index_node.h"

#include <thread>

#include "common/failpoint.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/retry.h"
#include "common/trace.h"
#include "core/lease.h"
#include "index/filter_index.h"
#include "index/index_factory.h"
#include "storage/binlog.h"

namespace manu {

IndexNode::IndexNode(NodeId id, const CoreContext& ctx,
                     DataCoordinator* data_coord, int32_t threads)
    : id_(id),
      ctx_(ctx),
      data_coord_(data_coord),
      pool_(std::make_unique<ThreadPool>(threads)) {
  if (ctx_.leases != nullptr) {
    lease_epoch_ = ctx_.leases->Register(id_, "index");
    heartbeat_ = std::thread([this] {
      int64_t next_heartbeat_ms = 0;
      while (!stop_heartbeat_.load(std::memory_order_acquire)) {
        if (NowMs() >= next_heartbeat_ms) {
          (void)ctx_.leases->Renew(id_, lease_epoch_);
          next_heartbeat_ms = NowMs() + ctx_.config.heartbeat_interval_ms;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      }
    });
  }
}

IndexNode::~IndexNode() {
  stop_heartbeat_.store(true, std::memory_order_release);
  if (heartbeat_.joinable()) heartbeat_.join();
  pool_.reset();
}

void IndexNode::SubmitBuild(SegmentMeta segment, FieldId field,
                            IndexParams params, int32_t version) {
  pending_.fetch_add(1, std::memory_order_acq_rel);
  pool_->Post([this, segment = std::move(segment), field, params, version] {
    Build(segment, field, params, version);
    pending_.fetch_sub(1, std::memory_order_acq_rel);
  });
}

void IndexNode::SubmitFilterBuild(SegmentMeta segment, int32_t version) {
  pending_.fetch_add(1, std::memory_order_acq_rel);
  pool_->Post([this, segment = std::move(segment), version] {
    BuildFilter(segment, version);
    pending_.fetch_sub(1, std::memory_order_acq_rel);
  });
}

void IndexNode::WaitIdle() const {
  while (pending_.load(std::memory_order_acquire) > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
}

void IndexNode::Build(const SegmentMeta& segment, FieldId field,
                      const IndexParams& params, int32_t version) {
  const int64_t start = NowMicros();
  // Like sealing, index builds are WAL-decoupled from their inserts: each
  // build opens its own force-sampled root trace.
  Span root = Tracer::Global().StartTrace("index_node.build",
                                          /*force_sample=*/true);
  root.Tag("node", static_cast<int64_t>(id_));
  root.Tag("segment", static_cast<int64_t>(segment.id));
  root.Tag("field", static_cast<int64_t>(field));
  {
    Status fp;
    MANU_FAILPOINT_CAPTURE("index_node.build", fp);
    if (!fp.ok()) {
      // Build abandoned; the segment keeps serving binlog-only until the
      // coordinator requests another build.
      MANU_LOG_WARN << "index node " << id_ << " build aborted (injected): "
                    << fp.ToString();
      root.Tag("error", "injected: " + fp.ToString());
      return;
    }
  }
  const RetryPolicy retry = MakeIoRetryPolicy(ctx_.config);
  // Column-based binlog: fetch just the vector column.
  Span load_span(root.context(), "binlog.load_field");
  auto column = RetryResult(retry, "index_node.read_binlog", [&] {
    return binlog::ReadField(ctx_.store, segment.binlog_path, field);
  });
  load_span.End();
  if (!column.ok()) {
    MANU_LOG_ERROR << "index node " << id_ << " read binlog failed: "
                   << column.status().ToString();
    root.Tag("error", column.status().ToString());
    return;
  }
  const FieldColumn& col = column.value();
  // Version in the path: a rebuild never clobbers the file a query node may
  // be reading.
  const std::string index_path =
      "index/c" + std::to_string(segment.collection) + "/seg" +
      std::to_string(segment.id) + "/f" + std::to_string(field) + "/v" +
      std::to_string(version);
  Span build_span(root.context(), "index.build");
  build_span.Tag("rows", col.NumRows());
  auto built = BuildVectorIndex(params, col.f32.data(), col.NumRows(),
                                ctx_.store, index_path + "/buckets");
  build_span.End();
  if (!built.ok()) {
    MANU_LOG_ERROR << "index node " << id_ << " build failed: "
                   << built.status().ToString();
    root.Tag("error", built.status().ToString());
    return;
  }

  BinaryWriter w;
  built.value()->Serialize(&w);
  const std::string framed = binlog::Frame(w.Release());
  Span persist_span(root.context(), "index.persist");
  Status st = RetryOp(retry, "index_node.persist_index",
                      [&] { return ctx_.store->Put(index_path, framed); });
  persist_span.End();
  if (!st.ok()) {
    MANU_LOG_ERROR << "index node " << id_ << " persist failed: "
                   << st.ToString();
    root.Tag("error", st.ToString());
    return;
  }
  // Commit-point fence (index registration): a zombie index node that lost
  // its lease must not publish index routes.
  if (ctx_.leases != nullptr) {
    Status fenced = ctx_.leases->CheckEpoch(id_, lease_epoch_);
    if (!fenced.ok()) {
      MANU_LOG_WARN << "index node " << id_ << " register of segment "
                    << segment.id << " rejected: " << fenced.ToString();
      return;
    }
  }
  {
    Span reg_span(root.context(), "data_coord.register_index");
    st = data_coord_->RegisterIndex(segment.collection, segment.id, field,
                                    index_path, version);
  }
  if (!st.ok()) {
    MANU_LOG_ERROR << "index node " << id_ << " register failed: "
                   << st.ToString();
    root.Tag("error", st.ToString());
    return;
  }

  // Announce with the updated segment meta so subscribers need no extra
  // metadata round trip.
  auto updated = data_coord_->GetSegment(segment.collection, segment.id);
  LogEntry announce;
  announce.type = LogEntryType::kIndexBuilt;
  announce.timestamp = ctx_.tso->Allocate();
  announce.collection = segment.collection;
  announce.shard = segment.shard;
  announce.segment = segment.id;
  announce.payload =
      updated.ok() ? updated.value().Serialize() : segment.Serialize();
  ctx_.mq->Publish(CoordChannelName(), std::move(announce));

  MetricsRegistry::Global().GetCounter("index_node.indexes_built")->Add(1);
  MetricsRegistry::Global()
      .GetHistogram("index_node.build_latency")
      ->Observe(static_cast<double>(NowMicros() - start));
}

void IndexNode::BuildFilter(const SegmentMeta& segment, int32_t version) {
  const int64_t start = NowMicros();
  Span root = Tracer::Global().StartTrace("index_node.build_filter",
                                          /*force_sample=*/true);
  root.Tag("node", static_cast<int64_t>(id_));
  root.Tag("segment", static_cast<int64_t>(segment.id));
  const RetryPolicy retry = MakeIoRetryPolicy(ctx_.config);
  // The filter index covers every scalar column, so read the whole segment
  // (the vector column rides along; attribute columns dominate neither size
  // nor build cost).
  Span load_span(root.context(), "binlog.load_segment");
  auto batch = RetryResult(retry, "index_node.read_binlog", [&] {
    return binlog::ReadSegment(ctx_.store, segment.binlog_path);
  });
  load_span.End();
  if (!batch.ok()) {
    MANU_LOG_ERROR << "index node " << id_ << " filter read binlog failed: "
                   << batch.status().ToString();
    root.Tag("error", batch.status().ToString());
    return;
  }
  Span build_span(root.context(), "filter_index.build");
  build_span.Tag("rows", batch.value().NumRows());
  FilterIndex index;
  Status st = index.Build(batch.value());
  build_span.End();
  if (!st.ok()) {
    MANU_LOG_ERROR << "index node " << id_ << " filter build failed: "
                   << st.ToString();
    root.Tag("error", st.ToString());
    return;
  }

  BinaryWriter w;
  index.Serialize(&w);
  const std::string framed = binlog::Frame(w.Release());
  // Versioned path, same contract as vector indexes: a rebuild never
  // clobbers the artifact a query node may be reading.
  const std::string path =
      "index/c" + std::to_string(segment.collection) + "/seg" +
      std::to_string(segment.id) + "/filter/v" + std::to_string(version);
  Span persist_span(root.context(), "filter_index.persist");
  st = RetryOp(retry, "index_node.persist_filter",
               [&] { return ctx_.store->Put(path, framed); });
  persist_span.End();
  if (!st.ok()) {
    MANU_LOG_ERROR << "index node " << id_ << " filter persist failed: "
                   << st.ToString();
    root.Tag("error", st.ToString());
    return;
  }
  // Same commit-point fence as vector-index registration.
  if (ctx_.leases != nullptr) {
    Status fenced = ctx_.leases->CheckEpoch(id_, lease_epoch_);
    if (!fenced.ok()) {
      MANU_LOG_WARN << "index node " << id_ << " filter register of segment "
                    << segment.id << " rejected: " << fenced.ToString();
      return;
    }
  }
  {
    Span reg_span(root.context(), "data_coord.register_filter_index");
    st = data_coord_->RegisterFilterIndex(segment.collection, segment.id,
                                          path, version);
  }
  if (!st.ok()) {
    MANU_LOG_ERROR << "index node " << id_ << " filter register failed: "
                   << st.ToString();
    root.Tag("error", st.ToString());
    return;
  }

  // Re-announce kIndexBuilt with the refreshed meta so query nodes already
  // serving the segment learn the artifact route.
  auto updated = data_coord_->GetSegment(segment.collection, segment.id);
  LogEntry announce;
  announce.type = LogEntryType::kIndexBuilt;
  announce.timestamp = ctx_.tso->Allocate();
  announce.collection = segment.collection;
  announce.shard = segment.shard;
  announce.segment = segment.id;
  announce.payload =
      updated.ok() ? updated.value().Serialize() : segment.Serialize();
  ctx_.mq->Publish(CoordChannelName(), std::move(announce));

  MetricsRegistry::Global().GetCounter("filter.index_builds")->Add(1);
  MetricsRegistry::Global()
      .GetHistogram("filter.index_build_latency")
      ->Observe(static_cast<double>(NowMicros() - start));
}

}  // namespace manu
