#ifndef MANU_CORE_MANU_H_
#define MANU_CORE_MANU_H_

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/config.h"
#include "core/data_coord.h"
#include "core/data_node.h"
#include "core/index_coord.h"
#include "core/index_node.h"
#include "core/lease.h"
#include "core/logger.h"
#include "core/proxy.h"
#include "core/query_coord.h"
#include "core/query_node.h"
#include "core/root_coord.h"

namespace manu {

/// Everything that survives a process crash (Section 3.2's storage layer +
/// log backbone): the MetaStore (etcd), the WAL broker (Kafka/Pulsar), the
/// TSO state and the object store. A ManuInstance runs *over* a
/// DurableState; destroying the instance while a test (or a successor
/// instance) still holds the shared_ptr models a crash — compute state is
/// gone, durable state is not — and ManuInstance::Recover() rebuilds a
/// working deployment from it.
struct DurableState {
  MetaStore meta;
  MessageQueue mq;
  Tso tso;
  std::shared_ptr<ObjectStore> store;

  explicit DurableState(std::shared_ptr<ObjectStore> s = nullptr)
      : store(s != nullptr ? std::move(s)
                           : std::make_shared<MemoryObjectStore>()) {}
  DurableState(const DurableState&) = delete;
  DurableState& operator=(const DurableState&) = delete;
};

/// The whole Manu deployment in one process: storage layer (meta store +
/// object store), log backbone (broker, TSO, time-tick emitter), the four
/// coordinators, and the worker fleets (loggers, data / index / query
/// nodes). Nodes are real objects with their own threads communicating only
/// through the interfaces a networked deployment would use, so the
/// architecture of the paper — not its network stack — is what runs.
///
/// The public surface mirrors the PyManu API (Table 2): CreateCollection,
/// Insert, Delete, CreateIndex, Search (with filters, multi-vector search,
/// consistency levels and time travel).
///
/// Liveness (Section 3.6): unless config.enable_liveness is off, every
/// worker holds a heartbeat lease and the background watchdog fails over
/// workers whose lease expires — query nodes hand their channels/segments
/// to survivors, data nodes hand their shard channels to a survivor that
/// replays the WAL from the archived floor. Fencing epochs (persisted in
/// the MetaStore) reject commits from zombies and from superseded
/// instances.
class ManuInstance {
 public:
  /// Fresh deployment over a new DurableState. `store` defaults to an
  /// in-memory object store when null.
  explicit ManuInstance(ManuConfig config,
                        std::shared_ptr<ObjectStore> store = nullptr);

  /// Crash recovery: builds a new deployment over an existing DurableState
  /// (same MetaStore + ObjectStore + WAL broker). Collections are restored
  /// from the MetaStore, sealed segments and indexes reload via the
  /// coordination-channel replay, and shard channels replay the WAL from
  /// each shard's archived floor — so a tau=0 search on the recovered
  /// instance sees every previously acked write. Returns DataLoss without
  /// constructing anything when the WAL was truncated above a shard's
  /// archived floor (acked writes are unrecoverable). Acquiring the
  /// instance epoch fences the previous instance's loggers and data
  /// coordinator even if that process is still running.
  static Result<std::unique_ptr<ManuInstance>> Recover(
      ManuConfig config, std::shared_ptr<DurableState> durable);

  ~ManuInstance();

  ManuInstance(const ManuInstance&) = delete;
  ManuInstance& operator=(const ManuInstance&) = delete;

  // --- DDL ---
  Result<CollectionMeta> CreateCollection(CollectionSchema schema);
  Status DropCollection(const std::string& name);
  /// Declares the index for a vector field and schedules builds for already
  /// sealed segments (batch indexing) as well as future ones (stream
  /// indexing).
  Status CreateIndex(const std::string& collection, const std::string& field,
                     IndexParams params);

  // --- DML ---
  Result<Timestamp> Insert(const std::string& collection, EntityBatch batch);
  Result<Timestamp> Delete(const std::string& collection,
                           const std::vector<int64_t>& pks);

  // --- Query ---
  Result<SearchResult> Search(const SearchRequest& req);
  /// Batched search: see Proxy::BatchSearch.
  std::vector<Result<SearchResult>> BatchSearch(
      const std::vector<SearchRequest>& reqs);

  // --- Segment life cycle ---
  /// Seals all growing segments now (rather than waiting for size/idle
  /// triggers) and returns once data nodes have archived them and index
  /// nodes are idle. The synchronous barrier is for tests and benches; the
  /// production path is fully asynchronous.
  Status FlushAndWait(const std::string& collection, int64_t timeout_ms = 30000);

  /// Blocks until every query node serving the collection has consumed the
  /// WAL up to `ts` (tests). `timeout_ms` bounds the whole call, not each
  /// node's wait.
  Status WaitUntilVisible(const std::string& collection, Timestamp ts,
                          int64_t timeout_ms = 10000);

  // --- Segment maintenance ---
  /// Merges small sealed segments and physically drops tombstoned rows
  /// (Sections 3.1/3.5). Returns once the merged segments are indexed and
  /// serving and the inputs are released.
  Status Compact(const std::string& collection, int64_t timeout_ms = 60000);

  // --- Time travel (Section 4.3) ---
  Status Checkpoint(const std::string& collection);
  /// Log expiration: drops WAL entries older than `ts` from the
  /// collection's shard channels ("users can also specify an expiration
  /// period to delete outdated log"). Bounds the time-travel/replay
  /// horizon; data sealed into binlogs is unaffected. The truncation point
  /// is clamped to each shard's archived floor so crash recovery never
  /// loses acked writes: entries above the floor (not yet in binlogs) are
  /// always retained.
  Status TruncateLogBefore(const std::string& collection, Timestamp ts);

  // --- Elasticity & failures (Section 3.6 / Figure 9) ---
  Status ScaleQueryNodes(int32_t target);
  /// Manual kill + synchronous recovery (tests/benches).
  Status KillQueryNode(NodeId id);
  /// Abrupt kill: stops the node without telling any coordinator. Recovery
  /// happens automatically when the watchdog sees the lease expire.
  Status CrashQueryNode(NodeId id);
  /// Abrupt kill of a data node; the watchdog hands its shard channels to a
  /// survivor that replays the WAL from the archived floor.
  Status CrashDataNode(NodeId id);
  size_t NumQueryNodes() const { return query_coord_->NumQueryNodes(); }

  // --- Introspection ---
  /// Snapshot of cluster state: node fleet, per-collection segments and
  /// rows, memory, per-node liveness (lease epoch, heartbeat age),
  /// cumulative QPS counters and latency percentiles — the data behind the
  /// Attu GUI's "system view" (Section 4.2). Formatted as human-readable
  /// text.
  std::string DescribeCluster();

  // --- Component access (benches, tuner, advanced callers) ---
  RootCoordinator* root_coord() { return root_coord_.get(); }
  DataCoordinator* data_coord() { return data_coord_.get(); }
  IndexCoordinator* index_coord() { return index_coord_.get(); }
  QueryCoordinator* query_coord() { return query_coord_.get(); }
  Proxy* proxy() { return proxy_.get(); }
  ObjectStore* object_store() { return durable_->store.get(); }
  MessageQueue* mq() { return &durable_->mq; }
  Tso* tso() { return &durable_->tso; }
  LeaseManager* leases() { return leases_.get(); }
  int64_t instance_epoch() const { return instance_epoch_; }
  const ManuConfig& config() const { return config_; }

  /// The durable substrate. Holding this shared_ptr across this instance's
  /// destruction keeps the MetaStore/WAL/object store alive for Recover().
  std::shared_ptr<DurableState> durable_state() { return durable_; }

 private:
  ManuInstance(ManuConfig config, std::shared_ptr<DurableState> durable,
               bool recovered);

  CoreContext MakeContext() const;
  void BackgroundLoop();
  /// One watchdog sweep: revoke (fence) expired leases, then fail the dead
  /// workers over by role.
  void RunWatchdog();

  ManuConfig config_;
  std::shared_ptr<DurableState> durable_;
  std::unique_ptr<LeaseManager> leases_;  ///< Null when liveness disabled.
  int64_t instance_epoch_ = 0;
  std::unique_ptr<TimeTickEmitter> ticker_;

  std::unique_ptr<RootCoordinator> root_coord_;
  std::unique_ptr<DataCoordinator> data_coord_;
  std::unique_ptr<IndexCoordinator> index_coord_;
  std::unique_ptr<QueryCoordinator> query_coord_;
  std::unique_ptr<LoggerFleet> loggers_;
  std::unique_ptr<Proxy> proxy_;

  std::vector<std::unique_ptr<DataNode>> data_nodes_;
  std::vector<std::unique_ptr<IndexNode>> index_nodes_;

  std::atomic<int64_t> next_node_id_{100};
  std::atomic<bool> stop_{false};
  std::thread background_;
};

}  // namespace manu

#endif  // MANU_CORE_MANU_H_
