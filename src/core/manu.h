#ifndef MANU_CORE_MANU_H_
#define MANU_CORE_MANU_H_

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/config.h"
#include "core/data_coord.h"
#include "core/data_node.h"
#include "core/index_coord.h"
#include "core/index_node.h"
#include "core/logger.h"
#include "core/proxy.h"
#include "core/query_coord.h"
#include "core/query_node.h"
#include "core/root_coord.h"

namespace manu {

/// The whole Manu deployment in one process: storage layer (meta store +
/// object store), log backbone (broker, TSO, time-tick emitter), the four
/// coordinators, and the worker fleets (loggers, data / index / query
/// nodes). Nodes are real objects with their own threads communicating only
/// through the interfaces a networked deployment would use, so the
/// architecture of the paper — not its network stack — is what runs.
///
/// The public surface mirrors the PyManu API (Table 2): CreateCollection,
/// Insert, Delete, CreateIndex, Search (with filters, multi-vector search,
/// consistency levels and time travel).
class ManuInstance {
 public:
  /// `store` defaults to an in-memory object store when null.
  explicit ManuInstance(ManuConfig config,
                        std::shared_ptr<ObjectStore> store = nullptr);
  ~ManuInstance();

  ManuInstance(const ManuInstance&) = delete;
  ManuInstance& operator=(const ManuInstance&) = delete;

  // --- DDL ---
  Result<CollectionMeta> CreateCollection(CollectionSchema schema);
  Status DropCollection(const std::string& name);
  /// Declares the index for a vector field and schedules builds for already
  /// sealed segments (batch indexing) as well as future ones (stream
  /// indexing).
  Status CreateIndex(const std::string& collection, const std::string& field,
                     IndexParams params);

  // --- DML ---
  Result<Timestamp> Insert(const std::string& collection, EntityBatch batch);
  Result<Timestamp> Delete(const std::string& collection,
                           const std::vector<int64_t>& pks);

  // --- Query ---
  Result<SearchResult> Search(const SearchRequest& req);
  /// Batched search: see Proxy::BatchSearch.
  std::vector<Result<SearchResult>> BatchSearch(
      const std::vector<SearchRequest>& reqs);

  // --- Segment life cycle ---
  /// Seals all growing segments now (rather than waiting for size/idle
  /// triggers) and returns once data nodes have archived them and index
  /// nodes are idle. The synchronous barrier is for tests and benches; the
  /// production path is fully asynchronous.
  Status FlushAndWait(const std::string& collection, int64_t timeout_ms = 30000);

  /// Blocks until every query node serving the collection has consumed the
  /// WAL up to `ts` (tests).
  Status WaitUntilVisible(const std::string& collection, Timestamp ts,
                          int64_t timeout_ms = 10000);

  // --- Segment maintenance ---
  /// Merges small sealed segments and physically drops tombstoned rows
  /// (Sections 3.1/3.5). Returns once the merged segments are indexed and
  /// serving and the inputs are released.
  Status Compact(const std::string& collection, int64_t timeout_ms = 60000);

  // --- Time travel (Section 4.3) ---
  Status Checkpoint(const std::string& collection);
  /// Log expiration: drops WAL entries older than `ts` from the
  /// collection's shard channels ("users can also specify an expiration
  /// period to delete outdated log"). Bounds the time-travel/replay
  /// horizon; data sealed into binlogs is unaffected.
  Status TruncateLogBefore(const std::string& collection, Timestamp ts);

  // --- Elasticity (Section 3.6 / Figure 9) ---
  Status ScaleQueryNodes(int32_t target);
  Status KillQueryNode(NodeId id);
  size_t NumQueryNodes() const { return query_coord_->NumQueryNodes(); }

  // --- Introspection ---
  /// Snapshot of cluster state: node fleet, per-collection segments and
  /// rows, memory, cumulative QPS counters and latency percentiles — the
  /// data behind the Attu GUI's "system view" (Section 4.2). Formatted as
  /// human-readable text.
  std::string DescribeCluster();

  // --- Component access (benches, tuner, advanced callers) ---
  RootCoordinator* root_coord() { return root_coord_.get(); }
  DataCoordinator* data_coord() { return data_coord_.get(); }
  IndexCoordinator* index_coord() { return index_coord_.get(); }
  QueryCoordinator* query_coord() { return query_coord_.get(); }
  Proxy* proxy() { return proxy_.get(); }
  ObjectStore* object_store() { return store_.get(); }
  MessageQueue* mq() { return &mq_; }
  Tso* tso() { return &tso_; }
  const ManuConfig& config() const { return config_; }

 private:
  void BackgroundLoop();

  ManuConfig config_;
  std::shared_ptr<ObjectStore> store_;
  MetaStore meta_;
  MessageQueue mq_;
  Tso tso_;
  std::unique_ptr<TimeTickEmitter> ticker_;

  std::unique_ptr<RootCoordinator> root_coord_;
  std::unique_ptr<DataCoordinator> data_coord_;
  std::unique_ptr<IndexCoordinator> index_coord_;
  std::unique_ptr<QueryCoordinator> query_coord_;
  std::unique_ptr<LoggerFleet> loggers_;
  std::unique_ptr<Proxy> proxy_;

  std::vector<std::unique_ptr<DataNode>> data_nodes_;
  std::vector<std::unique_ptr<IndexNode>> index_nodes_;

  std::atomic<int64_t> next_node_id_{100};
  std::atomic<bool> stop_{false};
  std::thread background_;
};

}  // namespace manu

#endif  // MANU_CORE_MANU_H_
