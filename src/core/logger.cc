#include "core/logger.h"

#include "common/logging.h"
#include "common/metrics.h"
#include "core/admission.h"
#include "core/lease.h"

namespace manu {

namespace {
/// Releases a Logger's in-flight slot on every exit path of Append/Delete.
class SlotRelease {
 public:
  explicit SlotRelease(std::atomic<int64_t>* inflight) : inflight_(inflight) {}
  ~SlotRelease() {
    if (inflight_ != nullptr) {
      inflight_->fetch_sub(1, std::memory_order_relaxed);
    }
  }
  SlotRelease(const SlotRelease&) = delete;
  SlotRelease& operator=(const SlotRelease&) = delete;

 private:
  std::atomic<int64_t>* inflight_;
};
}  // namespace

Logger::Logger(NodeId id, const CoreContext& ctx, DataCoordinator* data_coord)
    : id_(id), ctx_(ctx), data_coord_(data_coord) {}

MessageQueue::PublishFence Logger::InstanceFence() const {
  if (ctx_.leases == nullptr) return {};
  return [this] {
    return ctx_.leases->CheckInstanceEpoch(ctx_.instance_epoch);
  };
}

Status Logger::ReserveSlot() {
  const int64_t limit = ctx_.config.logger_inflight_limit;
  if (limit <= 0) {
    inflight_.fetch_add(1, std::memory_order_relaxed);
    return Status::OK();
  }
  const int64_t prev = inflight_.fetch_add(1, std::memory_order_relaxed);
  if (prev >= limit) {
    inflight_.fetch_sub(1, std::memory_order_relaxed);
    MetricsRegistry::Global()
        .GetCounter("backpressure.logger_rejections")
        ->Add();
    return AdmissionController::ShedStatus(
        "logger " + std::to_string(id_), /*stage=*/0,
        std::max<int64_t>(1, ctx_.config.shed_retry_after_ms));
  }
  return Status::OK();
}

LsmEntityMap* Logger::MapFor(CollectionId collection, ShardId shard) {
  std::lock_guard<std::mutex> lk(mu_);
  auto& slot = maps_[{collection, shard}];
  if (slot == nullptr) {
    slot = std::make_unique<LsmEntityMap>(
        ctx_.store, "logger/" + std::to_string(id_) + "/c" +
                        std::to_string(collection) + "/s" +
                        std::to_string(shard));
    // Logger ids are stable across restarts, so a recovered instance's
    // logger finds its predecessor's SSTables in the object store and
    // recovers the pk->segment map: deletes of pre-crash (flushed) pks keep
    // working. Entries only in the lost memtable are a documented gap —
    // deletes of those pks are filtered as unknown.
    Status st = slot->Recover();
    if (!st.ok()) {
      MANU_LOG_WARN << "logger " << id_ << " entity-map recover: "
                    << st.ToString();
    }
  }
  return slot.get();
}

Result<Timestamp> Logger::Append(const CollectionMeta& meta, ShardId shard,
                                 EntityBatch batch,
                                 const TraceContext& trace) {
  Span span(trace, "logger.append");
  span.Tag("logger", static_cast<int64_t>(id_));
  span.Tag("shard", static_cast<int64_t>(shard));
  // Backpressure gate FIRST — before the TSO round trip and before any LSM
  // mutation, so a shed write has zero side effects.
  {
    Status admit = ReserveSlot();
    if (!admit.ok()) {
      span.Tag("error", admit.ToString());
      return admit;
    }
  }
  SlotRelease slot(&inflight_);
  MANU_RETURN_NOT_OK(batch.ValidateAgainst(meta.schema));
  const int64_t rows = batch.NumRows();
  if (rows == 0) return Status::InvalidArgument("empty batch");
  span.Tag("rows", rows);

  // One TSO round trip stamps the whole batch.
  const Timestamp first =
      ctx_.tso->AllocateBlock(static_cast<uint32_t>(rows));
  batch.timestamps.resize(rows);
  for (int64_t i = 0; i < rows; ++i) {
    batch.timestamps[i] = first + static_cast<Timestamp>(i);
  }
  const Timestamp last = batch.timestamps.back();

  MANU_ASSIGN_OR_RETURN(
      SegmentId segment,
      data_coord_->AllocateSegment(meta.id, shard, rows, batch.ByteSize()));

  LsmEntityMap* map = MapFor(meta.id, shard);
  for (int64_t pk : batch.primary_keys) {
    MANU_RETURN_NOT_OK(map->Put(pk, segment));
  }

  LogEntry entry;
  entry.type = LogEntryType::kInsert;
  entry.timestamp = last;
  entry.collection = meta.id;
  entry.shard = shard;
  entry.segment = segment;
  entry.batch = std::move(batch);
  span.Tag("segment", static_cast<int64_t>(segment));
  // The WAL append IS the commit point: a refused publish (broker fault /
  // shutdown) means the rows were never durable and must not be acked.
  // The instance-epoch fence rides INSIDE the broker's group-commit
  // decision: a superseded instance's logger is excluded from the commit
  // group before any waiter is acked, even if it was staged before the
  // takeover (the recovered instance owns the log now).
  {
    Span publish(span.context(), "wal.publish");
    Status fence_status;
    if (ctx_.mq->Publish(ShardChannelName(meta.id, shard), std::move(entry),
                         InstanceFence(), &fence_status) < 0) {
      publish.Tag("acked", "false");
      if (!fence_status.ok()) {
        span.Tag("error", fence_status.ToString());
        return fence_status;
      }
      span.Tag("error", "wal publish failed");
      return Status::Unavailable("wal publish failed");
    }
    publish.Tag("acked", "true");
  }
  span.Tag("lsn", static_cast<int64_t>(last));
  MetricsRegistry::Global().GetCounter("logger.rows_inserted")->Add(rows);
  MetricsRegistry::Global().GetRate("logger.insert_rate")->Mark(rows);
  return last;
}

Result<Timestamp> Logger::Delete(const CollectionMeta& meta, ShardId shard,
                                 std::vector<int64_t> pks,
                                 const TraceContext& trace) {
  Span span(trace, "logger.delete");
  span.Tag("logger", static_cast<int64_t>(id_));
  span.Tag("shard", static_cast<int64_t>(shard));
  span.Tag("pks", static_cast<int64_t>(pks.size()));
  // Same gate as Append: refuse before the LSM Lookup/Remove side effects.
  {
    Status admit = ReserveSlot();
    if (!admit.ok()) {
      span.Tag("error", admit.ToString());
      return admit;
    }
  }
  SlotRelease slot(&inflight_);
  LsmEntityMap* map = MapFor(meta.id, shard);
  std::vector<int64_t> existing;
  existing.reserve(pks.size());
  for (int64_t pk : pks) {
    if (map->Lookup(pk).ok()) {
      existing.push_back(pk);
      MANU_RETURN_NOT_OK(map->Remove(pk));
    }
  }
  if (existing.empty()) return Timestamp{0};

  LogEntry entry;
  entry.type = LogEntryType::kDelete;
  entry.timestamp = ctx_.tso->Allocate();
  entry.collection = meta.id;
  entry.shard = shard;
  entry.delete_pks = std::move(existing);
  const Timestamp ts = entry.timestamp;
  // Same commit-point discipline as Append: the epoch fence is evaluated
  // inside the group-commit decision, never before it.
  {
    Span publish(span.context(), "wal.publish");
    Status fence_status;
    if (ctx_.mq->Publish(ShardChannelName(meta.id, shard), std::move(entry),
                         InstanceFence(), &fence_status) < 0) {
      publish.Tag("acked", "false");
      if (!fence_status.ok()) {
        span.Tag("error", fence_status.ToString());
        return fence_status;
      }
      span.Tag("error", "wal publish failed");
      return Status::Unavailable("wal publish failed");
    }
    publish.Tag("acked", "true");
  }
  MetricsRegistry::Global().GetCounter("logger.rows_deleted")->Add(1);
  return ts;
}

Status Logger::FlushMaps() {
  std::lock_guard<std::mutex> lk(mu_);
  for (auto& [_, map] : maps_) {
    MANU_RETURN_NOT_OK(map->Flush());
  }
  return Status::OK();
}

Result<SegmentId> Logger::LookupEntity(CollectionId collection, ShardId shard,
                                       int64_t pk) {
  return MapFor(collection, shard)->Lookup(pk);
}

LoggerFleet::LoggerFleet(const CoreContext& ctx, DataCoordinator* data_coord,
                         int32_t num_loggers) {
  for (int32_t i = 0; i < num_loggers; ++i) {
    loggers_.push_back(std::make_unique<Logger>(i, ctx, data_coord));
    ring_.AddNode(i);
  }
}

ShardId LoggerFleet::ShardOf(int64_t pk, int32_t num_shards) {
  // SplitMix-style scramble so sequential pks spread across shards.
  uint64_t x = static_cast<uint64_t>(pk) + 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = x ^ (x >> 27);
  return static_cast<ShardId>(x % static_cast<uint64_t>(num_shards));
}

Logger* LoggerFleet::LoggerFor(CollectionId collection, ShardId shard) {
  const int64_t id = ring_.RouteString(ShardChannelName(collection, shard));
  return loggers_[static_cast<size_t>(id)].get();
}

Result<Timestamp> LoggerFleet::Insert(const CollectionMeta& meta,
                                      EntityBatch batch,
                                      const TraceContext& trace) {
  MANU_RETURN_NOT_OK(batch.ValidateAgainst(meta.schema));
  const int32_t num_shards = meta.num_shards;
  // Partition row indices by shard, preserving order within each shard.
  std::vector<std::vector<int64_t>> shard_rows(num_shards);
  for (int64_t i = 0; i < batch.NumRows(); ++i) {
    shard_rows[ShardOf(batch.primary_keys[i], num_shards)].push_back(i);
  }
  Timestamp max_ts = 0;
  for (ShardId shard = 0; shard < num_shards; ++shard) {
    const auto& rows = shard_rows[shard];
    if (rows.empty()) continue;
    EntityBatch sub;
    // Gather rows: contiguous runs use Slice for efficiency; general case
    // is row-by-row assembly.
    sub.primary_keys.reserve(rows.size());
    for (int64_t r : rows) sub.primary_keys.push_back(batch.primary_keys[r]);
    sub.columns.reserve(batch.columns.size());
    for (const FieldColumn& col : batch.columns) {
      FieldColumn out;
      out.field_id = col.field_id;
      out.type = col.type;
      out.dim = col.dim;
      for (int64_t r : rows) {
        switch (col.type) {
          case DataType::kInt64:
            out.i64.push_back(col.i64[r]);
            break;
          case DataType::kFloat:
            out.f32.push_back(col.f32[r]);
            break;
          case DataType::kDouble:
            out.f64.push_back(col.f64[r]);
            break;
          case DataType::kBool:
            out.b8.push_back(col.b8[r]);
            break;
          case DataType::kString:
            out.str.push_back(col.str[r]);
            break;
          case DataType::kFloatVector:
            out.f32.insert(out.f32.end(), col.VectorAt(r),
                           col.VectorAt(r) + col.dim);
            break;
        }
      }
      sub.columns.push_back(std::move(out));
    }
    MANU_ASSIGN_OR_RETURN(Timestamp ts,
                          LoggerFor(meta.id, shard)
                              ->Append(meta, shard, std::move(sub), trace));
    max_ts = std::max(max_ts, ts);
  }
  return max_ts;
}

Result<Timestamp> LoggerFleet::Delete(const CollectionMeta& meta,
                                      const std::vector<int64_t>& pks,
                                      const TraceContext& trace) {
  std::vector<std::vector<int64_t>> shard_pks(meta.num_shards);
  for (int64_t pk : pks) {
    shard_pks[ShardOf(pk, meta.num_shards)].push_back(pk);
  }
  Timestamp max_ts = 0;
  for (ShardId shard = 0; shard < meta.num_shards; ++shard) {
    if (shard_pks[shard].empty()) continue;
    MANU_ASSIGN_OR_RETURN(Timestamp ts,
                          LoggerFor(meta.id, shard)
                              ->Delete(meta, shard,
                                       std::move(shard_pks[shard]), trace));
    max_ts = std::max(max_ts, ts);
  }
  return max_ts;
}

}  // namespace manu
