#include "core/tuner.h"

#include <algorithm>
#include <cmath>

#include "common/metrics.h"
#include "index/index_factory.h"

namespace manu {

namespace {
double DefaultUtility(const TunerTrial& t) {
  // Throughput weighted by a steep recall gate: configurations below ~0.8
  // recall are nearly worthless no matter how fast (the paper's example
  // utility combines recall and throughput).
  const double gate = 1.0 / (1.0 + std::exp(-40.0 * (t.recall - 0.8)));
  return t.qps * gate;
}

int32_t ClampPow2(double v, int32_t lo, int32_t hi) {
  int32_t x = static_cast<int32_t>(std::lround(v));
  return std::clamp(x, lo, hi);
}
}  // namespace

IndexAutoTuner::IndexAutoTuner(TunerOptions options, UtilityFn utility)
    : options_(options),
      utility_(utility ? std::move(utility) : DefaultUtility),
      rng_(options.seed) {}

TunerTrial IndexAutoTuner::SampleConfig(
    const std::vector<TunerTrial>& elites, const VectorDataset& data) {
  TunerTrial trial;
  trial.params.type = options_.type;
  trial.params.metric = data.metric;
  trial.params.dim = data.dim;
  trial.params.seed = rng_();

  std::uniform_real_distribution<double> uni(0.0, 1.0);
  const bool from_model = !elites.empty() && uni(rng_) < options_.model_fraction;

  auto jitter = [&](double value, double rel) {
    std::normal_distribution<double> noise(0.0, rel);
    return value * std::exp(noise(rng_));
  };

  if (from_model) {
    // KDE-lite: perturb a random elite multiplicatively.
    std::uniform_int_distribution<size_t> pick(0, elites.size() - 1);
    const TunerTrial& e = elites[pick(rng_)];
    trial.params.nlist = ClampPow2(jitter(e.params.nlist, 0.3), 4, 4096);
    trial.nprobe = ClampPow2(jitter(e.nprobe, 0.3), 1, trial.params.nlist);
    trial.params.hnsw_m = ClampPow2(jitter(e.params.hnsw_m, 0.25), 4, 64);
    trial.params.hnsw_ef_construction =
        ClampPow2(jitter(e.params.hnsw_ef_construction, 0.3), 16, 512);
    trial.ef_search = ClampPow2(jitter(e.ef_search, 0.3), 8, 1024);
    trial.params.pq_m = e.params.pq_m;
  } else {
    std::uniform_real_distribution<double> log_nlist(std::log(16.0),
                                                     std::log(1024.0));
    std::uniform_real_distribution<double> log_nprobe(std::log(1.0),
                                                      std::log(128.0));
    std::uniform_real_distribution<double> log_m(std::log(4.0),
                                                 std::log(48.0));
    std::uniform_real_distribution<double> log_ef(std::log(16.0),
                                                  std::log(512.0));
    trial.params.nlist = ClampPow2(std::exp(log_nlist(rng_)), 4, 4096);
    trial.nprobe =
        ClampPow2(std::exp(log_nprobe(rng_)), 1, trial.params.nlist);
    trial.params.hnsw_m = ClampPow2(std::exp(log_m(rng_)), 4, 64);
    trial.params.hnsw_ef_construction =
        ClampPow2(std::exp(log_ef(rng_)), 16, 512);
    trial.ef_search = ClampPow2(std::exp(log_ef(rng_)), 8, 1024);
    // pq_m must divide dim; pick among divisors <= 64.
    std::vector<int32_t> divisors;
    for (int32_t m = 2; m <= std::min(64, data.dim); ++m) {
      if (data.dim % m == 0) divisors.push_back(m);
    }
    if (!divisors.empty()) {
      std::uniform_int_distribution<size_t> pick(0, divisors.size() - 1);
      trial.params.pq_m = divisors[pick(rng_)];
    }
  }
  return trial;
}

Status IndexAutoTuner::EvaluateTrial(
    const VectorDataset& data, const VectorDataset& queries,
    const std::vector<std::vector<Neighbor>>& truth, TunerTrial* trial) {
  const int64_t rows = std::min<int64_t>(trial->budget_rows, data.NumRows());
  MANU_ASSIGN_OR_RETURN(
      std::unique_ptr<VectorIndex> index,
      BuildVectorIndex(trial->params, data.data.data(), rows));

  SearchParams sp;
  sp.k = options_.k;
  sp.nprobe = trial->nprobe;
  sp.ef_search = trial->ef_search;

  // Ground truth was computed on the full sample; restrict to rows < budget
  // by recomputing truth hits within the prefix.
  double recall_sum = 0;
  const int64_t t0 = NowMicros();
  for (int64_t q = 0; q < queries.NumRows(); ++q) {
    MANU_ASSIGN_OR_RETURN(std::vector<Neighbor> got,
                          index->Search(queries.Row(q), sp));
    // Prefix-restricted truth.
    std::vector<Neighbor> t;
    for (const Neighbor& n : truth[q]) {
      if (n.id < rows) t.push_back(n);
      if (t.size() == options_.k) break;
    }
    recall_sum += RecallAtK(got, t, options_.k);
  }
  const int64_t elapsed = NowMicros() - t0;
  trial->recall = recall_sum / static_cast<double>(queries.NumRows());
  trial->qps = elapsed > 0 ? 1e6 * static_cast<double>(queries.NumRows()) /
                                 static_cast<double>(elapsed)
                           : 0;
  trial->utility = utility_(*trial);
  return Status::OK();
}

Result<std::vector<TunerTrial>> IndexAutoTuner::Tune(
    const VectorDataset& data) {
  // Shared evaluation set: queries from the same mixture + full-sample
  // exact ground truth (trimmed per budget in EvaluateTrial).
  SyntheticOptions qopts;
  qopts.dim = data.dim;
  qopts.metric = data.metric;
  qopts.seed = options_.seed;
  VectorDataset queries = MakeQueries(qopts, options_.eval_queries,
                                      options_.seed + 13);
  // Truth must rank *all* rows so prefix trimming works.
  std::vector<std::vector<Neighbor>> truth;
  {
    VectorDataset sample = data;
    const int64_t cap =
        std::min<int64_t>(data.NumRows(), options_.max_budget_rows);
    sample.data.resize(static_cast<size_t>(cap) * data.dim);
    truth.resize(queries.NumRows());
    for (int64_t q = 0; q < queries.NumRows(); ++q) {
      TopKHeap heap(options_.k * 8);
      for (int64_t r = 0; r < sample.NumRows(); ++r) {
        heap.Push(r, CanonicalScore(queries.Row(q), sample.Row(r), data.dim,
                                    data.metric));
      }
      truth[q] = heap.TakeSorted();
    }
  }

  // Hyperband rungs: trials start at min budget; the top 1/eta advance.
  std::vector<TunerTrial> all;
  std::vector<TunerTrial> elites;
  int32_t remaining = options_.max_trials;
  while (remaining > 0) {
    // Bracket: n0 configs at the lowest rung.
    int64_t budget = options_.min_budget_rows;
    int32_t n = std::min<int32_t>(
        remaining,
        static_cast<int32_t>(std::round(options_.eta * options_.eta)));
    std::vector<TunerTrial> rung;
    for (int32_t i = 0; i < n; ++i) {
      TunerTrial t = SampleConfig(elites, data);
      t.budget_rows = budget;
      rung.push_back(std::move(t));
    }
    while (!rung.empty() && remaining > 0) {
      for (TunerTrial& t : rung) {
        if (remaining <= 0) break;
        Status st = EvaluateTrial(data, queries, truth, &t);
        --remaining;
        if (st.ok()) all.push_back(t);
      }
      std::sort(rung.begin(), rung.end(),
                [](const TunerTrial& a, const TunerTrial& b) {
                  return a.utility > b.utility;
                });
      // Refresh elites with the global top quartile.
      std::sort(all.begin(), all.end(),
                [](const TunerTrial& a, const TunerTrial& b) {
                  return a.utility > b.utility;
                });
      elites.assign(all.begin(),
                    all.begin() + std::max<size_t>(1, all.size() / 4));
      // Promote survivors to the next rung with eta-times the budget.
      budget = static_cast<int64_t>(budget * options_.eta);
      if (budget > options_.max_budget_rows) break;
      const size_t keep = std::max<size_t>(
          1, static_cast<size_t>(rung.size() / options_.eta));
      if (keep >= rung.size()) break;
      rung.resize(keep);
      for (TunerTrial& t : rung) t.budget_rows = budget;
    }
  }

  std::sort(all.begin(), all.end(),
            [](const TunerTrial& a, const TunerTrial& b) {
              return a.utility > b.utility;
            });
  if (all.empty()) return Status::Internal("no successful tuner trials");
  return all;
}

Result<std::vector<TunerTrial>> IndexAutoTuner::RandomSearch(
    const VectorDataset& data) {
  TunerOptions saved = options_;
  options_.model_fraction = 0.0;  // Uniform sampling only.
  SyntheticOptions qopts;
  qopts.dim = data.dim;
  qopts.metric = data.metric;
  qopts.seed = options_.seed;
  VectorDataset queries = MakeQueries(qopts, options_.eval_queries,
                                      options_.seed + 13);
  std::vector<std::vector<Neighbor>> truth;
  truth.resize(queries.NumRows());
  const int64_t cap =
      std::min<int64_t>(data.NumRows(), options_.max_budget_rows);
  for (int64_t q = 0; q < queries.NumRows(); ++q) {
    TopKHeap heap(options_.k * 8);
    for (int64_t r = 0; r < cap; ++r) {
      heap.Push(r, CanonicalScore(queries.Row(q), data.Row(r), data.dim,
                                  data.metric));
    }
    truth[q] = heap.TakeSorted();
  }

  std::vector<TunerTrial> all;
  for (int32_t i = 0; i < options_.max_trials; ++i) {
    TunerTrial t = SampleConfig({}, data);
    t.budget_rows = options_.max_budget_rows;  // Full budget every time.
    if (EvaluateTrial(data, queries, truth, &t).ok()) all.push_back(t);
  }
  options_ = saved;
  std::sort(all.begin(), all.end(),
            [](const TunerTrial& a, const TunerTrial& b) {
              return a.utility > b.utility;
            });
  if (all.empty()) return Status::Internal("no successful tuner trials");
  return all;
}

}  // namespace manu
