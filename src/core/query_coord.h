#ifndef MANU_CORE_QUERY_COORD_H_
#define MANU_CORE_QUERY_COORD_H_

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "core/collection_meta.h"
#include "core/context.h"
#include "core/data_coord.h"
#include "core/placement.h"
#include "core/query_node.h"
#include "core/root_coord.h"

namespace manu {

/// Query coordinator (Sections 3.2/3.6): manages the fleet of query nodes,
/// assigns shard channels (growing data) and sealed segments to nodes, and
/// handles scaling, rebalancing and failure recovery. It subscribes to the
/// coordination channel; on kIndexBuilt it directs the least-loaded node to
/// load the segment's index + binlog and every node to drop the growing
/// twin. Segment redistribution is not atomic — a segment may briefly live
/// on two nodes — which is safe because proxies dedup results by pk.
///
/// Sealed-segment placement is split out: WHO should serve a segment (the
/// desired-state table, plus the repairs that converge actual onto desired)
/// lives in PlacementManager; this class keeps the serving machinery —
/// channels, node lifecycle, routing — and implements PlacementHost so
/// reconciler decisions act through the coordinator's node set and lock.
class QueryCoordinator : public PlacementHost {
 public:
  QueryCoordinator(const CoreContext& ctx, DataCoordinator* data_coord,
                   RootCoordinator* root_coord);
  ~QueryCoordinator() override;

  void Start();
  void Stop();

  // --- Fleet management ---

  /// Registers and starts serving through a node. New nodes receive
  /// segments on the next Rebalance().
  void AddQueryNode(std::shared_ptr<QueryNode> node);

  /// Graceful scale-down (drain): marks the node draining (no new replicas
  /// land on it, but searches keep routing to it), moves its primary
  /// channels, loads every sole-copy segment onto survivors FIRST, and only
  /// then releases + removes the node — zero coverage dip throughout. A
  /// drain interrupted by a topology change leaves the node serving and
  /// returns Unavailable (retryable).
  Status RemoveQueryNode(NodeId id);

  /// Simulated crash: drops the node without cooperation and restores its
  /// segments on healthy nodes from object storage (failure recovery).
  /// Manual test hook — the automatic path is the watchdog calling
  /// OnNodeDead after the node's lease expires.
  Status KillQueryNode(NodeId id);

  /// Watchdog failover: same recovery as KillQueryNode, driven by lease
  /// expiry instead of a manual call. NotFound when the node was already
  /// removed (e.g. a manual kill raced the watchdog).
  Status OnNodeDead(NodeId id);

  /// Abrupt-kill test hook: stops the node's pump (searches start failing,
  /// heartbeats stop) but tells the coordinator NOTHING — recovery must
  /// come from the watchdog noticing the expired lease.
  Status CrashNode(NodeId id);

  size_t NumQueryNodes() const;
  std::vector<std::shared_ptr<QueryNode>> Nodes() const;

  // --- Collection serving ---

  /// Starts serving a collection: shard channels are spread over the
  /// current nodes; announces kLoadCollection.
  Status LoadCollection(const CollectionMeta& meta);
  Status ReleaseCollection(CollectionId collection);

  /// Nodes currently serving `collection` (the proxy's routing snapshot).
  std::vector<std::shared_ptr<QueryNode>> NodesFor(
      CollectionId collection) const;

  /// One fan-out target in a routing plan (PlanFor).
  struct NodeRoute {
    std::shared_ptr<QueryNode> node;
    /// Segments this route is expected to scan (assigned sealed + the
    /// node's growing-only segments): the proxy's coverage weight under
    /// allow_partial.
    int64_t weight = 0;
    /// Sealed segments assigned to this node, sorted ascending
    /// (NodeSearchRequest::sealed_filter). Empty = nothing assigned; the
    /// node is in the plan for its growing segments / channel gate.
    std::vector<SegmentId> sealed_filter;
  };

  /// A routing snapshot: the fan-out targets plus the sealed segments that
  /// currently have NO live replica. Unroutable segments are not silently
  /// dropped — they count against coverage (allow_partial) or fail the
  /// query (strict), and the reconciler treats them as repair triggers.
  struct Plan {
    std::vector<NodeRoute> routes;
    int64_t unroutable = 0;
  };

  /// Load-aware routing plan: every shard channel owner is included (they
  /// alone hold growing segments), and each sealed segment is assigned to
  /// exactly ONE owner picked by power-of-two-choices over the replica set
  /// (two deterministic pseudo-random candidates, lower load wins; load =
  /// heartbeat-piggybacked NodeLoad when fresh, the node's live snapshot
  /// otherwise). With replica_factor > 1 this replaces NodesFor's
  /// dispatch-everyone-scan-everything with one scan per segment spread by
  /// load, which is what makes hot replicas add throughput instead of just
  /// redundancy.
  Plan PlanFor(CollectionId collection) const;

  /// Converges placement onto the current fleet: tops up under-replicated
  /// groups (scale-up spread), then moves replicas from the most- to the
  /// least-loaded node until per-node counts differ by at most one.
  Status Rebalance();

  PlacementManager* placement() const { return placement_.get(); }

  // --- PlacementHost (reconciler decisions act through the coordinator) ---

  std::vector<std::pair<NodeId, uint64_t>> RepairCandidates() override;
  Status LoadReplica(NodeId target, const SegmentMeta& meta,
                     std::shared_ptr<const CollectionSchema> schema) override;
  void ReleaseReplica(NodeId target, CollectionId collection,
                      SegmentId segment) override;
  int64_t TopologyEpoch() const override {
    return topo_epoch_.load(std::memory_order_acquire);
  }

 private:
  struct CollectionServing {
    std::shared_ptr<const CollectionSchema> schema;
    std::map<FieldId, IndexParams> index_params;
    int32_t num_shards = 0;
    /// shard -> node id currently pumping that channel.
    std::map<ShardId, NodeId> channel_owner;
    /// Compaction: merged segment -> segments to release once it serves.
    std::map<SegmentId, std::vector<SegmentId>> pending_drops;
  };

  void Run();
  /// Shared crash-recovery body (mu_ held): stops/evicts the victim,
  /// promotes its channels, and synchronously reloads segments whose
  /// replica group hit ZERO live copies (coverage); groups merely below
  /// desired are the reconciler's to top up (redundancy).
  Status RecoverDeadNodeLocked(NodeId id);
  void OnSegmentReady(const SegmentMeta& meta);
  /// Releases `segments` from their owners (mu_ held by caller).
  void ReleaseSegmentsLocked(CollectionId collection,
                             const std::vector<SegmentId>& segments);
  std::shared_ptr<QueryNode> NodeById(NodeId id) const;
  /// Least-loaded non-draining node (mu_ held).
  std::shared_ptr<QueryNode> LeastLoadedLocked() const;
  /// Routing load score (lower = less loaded): heartbeat load when fresh,
  /// else the node's direct snapshot.
  int64_t RouteLoadScore(const std::shared_ptr<QueryNode>& node) const;

  CoreContext ctx_;
  DataCoordinator* data_coord_;
  RootCoordinator* root_coord_;

  mutable std::mutex mu_;
  std::vector<std::shared_ptr<QueryNode>> nodes_;
  std::map<CollectionId, CollectionServing> serving_;
  /// Nodes mid-drain: still serving (searches route to them) but excluded
  /// from repair targets and new placements.
  std::set<NodeId> draining_;

  /// Desired-state table + reconciler. Lock order: mu_ -> placement table
  /// mutex; placement host callbacks take mu_ but are never invoked under
  /// the table mutex.
  std::unique_ptr<PlacementManager> placement_;
  /// Bumped by every failover, drain start/finish and node add — the fence
  /// repairs are planned/committed against (see PlacementHost).
  std::atomic<int64_t> topo_epoch_{0};

  std::atomic<bool> stop_{false};
  std::thread thread_;
  /// Per-plan counter feeding the deterministic p2c candidate draw.
  mutable std::atomic<uint64_t> route_seq_{0};
};

}  // namespace manu

#endif  // MANU_CORE_QUERY_COORD_H_
