#include "index/filter_index.h"

#include <algorithm>

namespace manu {

// --- BitmapPostings ---

int64_t BitmapPostings::Container::Cardinality() const {
  if (!dense) return static_cast<int64_t>(values.size());
  int64_t n = 0;
  for (uint64_t w : words) n += __builtin_popcountll(w);
  return n;
}

BitmapPostings BitmapPostings::FromSortedRows(
    const std::vector<int64_t>& rows) {
  BitmapPostings out;
  size_t i = 0;
  while (i < rows.size()) {
    const uint32_t key = static_cast<uint32_t>(rows[i] >> kChunkBits);
    size_t j = i;
    while (j < rows.size() &&
           static_cast<uint32_t>(rows[j] >> kChunkBits) == key) {
      ++j;
    }
    Container c;
    c.key = key;
    const size_t n = j - i;
    if (n > kArrayMax) {
      c.dense = true;
      c.words.assign(kWordsPerChunk, 0);
      for (size_t k = i; k < j; ++k) {
        const uint64_t low = static_cast<uint64_t>(rows[k]) & (kChunkRows - 1);
        c.words[low >> 6] |= 1ull << (low & 63);
      }
    } else {
      c.values.reserve(n);
      for (size_t k = i; k < j; ++k) {
        c.values.push_back(static_cast<uint16_t>(rows[k] & (kChunkRows - 1)));
      }
    }
    out.cardinality_ += static_cast<int64_t>(n);
    out.containers_.push_back(std::move(c));
    i = j;
  }
  return out;
}

void BitmapPostings::AddTo(ConcurrentBitset* out) const {
  for (const Container& c : containers_) {
    const size_t base = static_cast<size_t>(c.key) << kChunkBits;
    if (c.dense) {
      for (size_t w = 0; w < c.words.size(); ++w) {
        uint64_t word = c.words[w];
        while (word != 0) {
          const int bit = __builtin_ctzll(word);
          out->Set(base + w * 64 + static_cast<size_t>(bit));
          word &= word - 1;
        }
      }
    } else {
      for (uint16_t v : c.values) out->Set(base + v);
    }
  }
}

void BitmapPostings::AppendRows(std::vector<int64_t>* out) const {
  for (const Container& c : containers_) {
    const int64_t base = static_cast<int64_t>(c.key) << kChunkBits;
    if (c.dense) {
      for (size_t w = 0; w < c.words.size(); ++w) {
        uint64_t word = c.words[w];
        while (word != 0) {
          const int bit = __builtin_ctzll(word);
          out->push_back(base + static_cast<int64_t>(w * 64) + bit);
          word &= word - 1;
        }
      }
    } else {
      for (uint16_t v : c.values) out->push_back(base + v);
    }
  }
}

bool BitmapPostings::Contains(int64_t row) const {
  const uint32_t key = static_cast<uint32_t>(row >> kChunkBits);
  const auto it = std::lower_bound(
      containers_.begin(), containers_.end(), key,
      [](const Container& c, uint32_t k) { return c.key < k; });
  if (it == containers_.end() || it->key != key) return false;
  const uint64_t low = static_cast<uint64_t>(row) & (kChunkRows - 1);
  if (it->dense) {
    return (it->words[low >> 6] >> (low & 63)) & 1;
  }
  return std::binary_search(it->values.begin(), it->values.end(),
                            static_cast<uint16_t>(low));
}

uint64_t BitmapPostings::MemoryBytes() const {
  uint64_t bytes = sizeof(*this);
  for (const Container& c : containers_) {
    bytes += sizeof(Container) + c.values.size() * sizeof(uint16_t) +
             c.words.size() * sizeof(uint64_t);
  }
  return bytes;
}

void BitmapPostings::Serialize(BinaryWriter* w) const {
  w->PutI64(cardinality_);
  w->PutU32(static_cast<uint32_t>(containers_.size()));
  for (const Container& c : containers_) {
    w->PutU32(c.key);
    w->PutBool(c.dense);
    if (c.dense) {
      w->PutVector(c.words);
    } else {
      w->PutVector(c.values);
    }
  }
}

Result<BitmapPostings> BitmapPostings::Deserialize(BinaryReader* r) {
  BitmapPostings out;
  MANU_ASSIGN_OR_RETURN(out.cardinality_, r->GetI64());
  MANU_ASSIGN_OR_RETURN(uint32_t n, r->GetU32());
  out.containers_.resize(n);
  int64_t total = 0;
  uint32_t prev_key = 0;
  for (uint32_t i = 0; i < n; ++i) {
    Container& c = out.containers_[i];
    MANU_ASSIGN_OR_RETURN(c.key, r->GetU32());
    if (i > 0 && c.key <= prev_key) {
      return Status::Corruption("bitmap postings: container keys not sorted");
    }
    prev_key = c.key;
    MANU_ASSIGN_OR_RETURN(c.dense, r->GetBool());
    if (c.dense) {
      MANU_ASSIGN_OR_RETURN(c.words, r->GetVector<uint64_t>());
      if (c.words.size() != kWordsPerChunk) {
        return Status::Corruption("bitmap postings: bad bitmap container");
      }
    } else {
      MANU_ASSIGN_OR_RETURN(c.values, r->GetVector<uint16_t>());
      if (!std::is_sorted(c.values.begin(), c.values.end())) {
        return Status::Corruption("bitmap postings: array container unsorted");
      }
    }
    total += c.Cardinality();
  }
  if (total != out.cardinality_) {
    return Status::Corruption("bitmap postings: cardinality mismatch");
  }
  return out;
}

// --- LabelBitmapIndex ---

Status LabelBitmapIndex::Build(const FieldColumn& column) {
  if (column.type != DataType::kString) {
    return Status::InvalidArgument(
        "label bitmap index requires a string column");
  }
  num_rows_ = column.NumRows();
  labels_ = column.str;
  std::sort(labels_.begin(), labels_.end());
  labels_.erase(std::unique(labels_.begin(), labels_.end()), labels_.end());
  std::vector<std::vector<int64_t>> rows(labels_.size());
  for (int64_t row = 0; row < num_rows_; ++row) {
    const auto it =
        std::lower_bound(labels_.begin(), labels_.end(), column.str[row]);
    rows[it - labels_.begin()].push_back(row);  // Ascending by construction.
  }
  postings_.clear();
  postings_.reserve(labels_.size());
  for (const auto& posting : rows) {
    postings_.push_back(BitmapPostings::FromSortedRows(posting));
  }
  return Status::OK();
}

void LabelBitmapIndex::EqualsQuery(const std::string& label,
                                   ConcurrentBitset* out) const {
  const auto it = std::lower_bound(labels_.begin(), labels_.end(), label);
  if (it == labels_.end() || *it != label) return;
  postings_[it - labels_.begin()].AddTo(out);
}

int64_t LabelBitmapIndex::PostingSize(const std::string& label) const {
  const auto it = std::lower_bound(labels_.begin(), labels_.end(), label);
  if (it == labels_.end() || *it != label) return 0;
  return postings_[it - labels_.begin()].cardinality();
}

uint64_t LabelBitmapIndex::MemoryBytes() const {
  uint64_t bytes = sizeof(*this);
  for (const auto& l : labels_) bytes += l.size();
  for (const auto& p : postings_) bytes += p.MemoryBytes();
  return bytes;
}

void LabelBitmapIndex::Serialize(BinaryWriter* w) const {
  w->PutI64(num_rows_);
  w->PutU32(static_cast<uint32_t>(labels_.size()));
  for (size_t i = 0; i < labels_.size(); ++i) {
    w->PutString(labels_[i]);
    postings_[i].Serialize(w);
  }
}

Result<LabelBitmapIndex> LabelBitmapIndex::Deserialize(BinaryReader* r) {
  LabelBitmapIndex index;
  MANU_ASSIGN_OR_RETURN(index.num_rows_, r->GetI64());
  MANU_ASSIGN_OR_RETURN(uint32_t n, r->GetU32());
  index.labels_.resize(n);
  index.postings_.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    MANU_ASSIGN_OR_RETURN(index.labels_[i], r->GetString());
    MANU_ASSIGN_OR_RETURN(BitmapPostings p, BitmapPostings::Deserialize(r));
    index.postings_.push_back(std::move(p));
  }
  return index;
}

// --- FilterIndex ---

Status FilterIndex::Build(const EntityBatch& batch) {
  num_rows_ = batch.NumRows();
  scalars_.clear();
  labels_.clear();
  for (const FieldColumn& column : batch.columns) {
    switch (column.type) {
      case DataType::kInt64:
      case DataType::kFloat:
      case DataType::kDouble: {
        ScalarSortedIndex index;
        MANU_RETURN_NOT_OK(index.Build(column));
        scalars_.emplace(column.field_id, std::move(index));
        break;
      }
      case DataType::kString: {
        LabelBitmapIndex index;
        MANU_RETURN_NOT_OK(index.Build(column));
        labels_.emplace(column.field_id, std::move(index));
        break;
      }
      default:
        break;  // Vector / bool fields are not filterable.
    }
  }
  return Status::OK();
}

const ScalarSortedIndex* FilterIndex::scalar(FieldId field) const {
  const auto it = scalars_.find(field);
  return it == scalars_.end() ? nullptr : &it->second;
}

const LabelBitmapIndex* FilterIndex::label(FieldId field) const {
  const auto it = labels_.find(field);
  return it == labels_.end() ? nullptr : &it->second;
}

uint64_t FilterIndex::MemoryBytes() const {
  uint64_t bytes = sizeof(*this);
  for (const auto& [field, index] : scalars_) {
    bytes += 2 * index.NumRows() * (sizeof(double) + sizeof(int64_t)) / 2;
  }
  for (const auto& [field, index] : labels_) bytes += index.MemoryBytes();
  return bytes;
}

void FilterIndex::Serialize(BinaryWriter* w) const {
  w->PutI64(num_rows_);
  w->PutU32(static_cast<uint32_t>(scalars_.size()));
  for (const auto& [field, index] : scalars_) {
    w->PutI64(field);
    index.Serialize(w);
  }
  w->PutU32(static_cast<uint32_t>(labels_.size()));
  for (const auto& [field, index] : labels_) {
    w->PutI64(field);
    index.Serialize(w);
  }
}

Result<FilterIndex> FilterIndex::Deserialize(BinaryReader* r) {
  FilterIndex out;
  MANU_ASSIGN_OR_RETURN(out.num_rows_, r->GetI64());
  MANU_ASSIGN_OR_RETURN(uint32_t nscalar, r->GetU32());
  for (uint32_t i = 0; i < nscalar; ++i) {
    MANU_ASSIGN_OR_RETURN(int64_t field, r->GetI64());
    MANU_ASSIGN_OR_RETURN(ScalarSortedIndex index,
                          ScalarSortedIndex::Deserialize(r));
    out.scalars_.emplace(static_cast<FieldId>(field), std::move(index));
  }
  MANU_ASSIGN_OR_RETURN(uint32_t nlabel, r->GetU32());
  for (uint32_t i = 0; i < nlabel; ++i) {
    MANU_ASSIGN_OR_RETURN(int64_t field, r->GetI64());
    MANU_ASSIGN_OR_RETURN(LabelBitmapIndex index,
                          LabelBitmapIndex::Deserialize(r));
    out.labels_.emplace(static_cast<FieldId>(field), std::move(index));
  }
  return out;
}

}  // namespace manu
