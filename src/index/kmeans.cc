#include "index/kmeans.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <random>

#include "simd/distances.h"

namespace manu {

namespace {

/// k-means++ seeding over `rows` (indices into data).
std::vector<float> SeedPlusPlus(const float* data, const std::vector<int64_t>& rows,
                                int32_t dim, int32_t k, std::mt19937_64* rng) {
  std::vector<float> centroids;
  centroids.reserve(static_cast<size_t>(k) * dim);
  std::uniform_int_distribution<size_t> pick(0, rows.size() - 1);
  const float* first = data + rows[pick(*rng)] * dim;
  centroids.insert(centroids.end(), first, first + dim);

  std::vector<float> dist2(rows.size(), std::numeric_limits<float>::max());
  for (int32_t c = 1; c < k; ++c) {
    const float* last = centroids.data() + static_cast<size_t>(c - 1) * dim;
    double total = 0;
    for (size_t i = 0; i < rows.size(); ++i) {
      const float d = simd::L2Sqr(data + rows[i] * dim, last, dim);
      dist2[i] = std::min(dist2[i], d);
      total += dist2[i];
    }
    if (total == 0) {
      // All remaining points coincide with chosen centers; duplicate one.
      centroids.insert(centroids.end(), last, last + dim);
      continue;
    }
    std::uniform_real_distribution<double> uni(0, total);
    double target = uni(*rng);
    size_t chosen = rows.size() - 1;
    for (size_t i = 0; i < rows.size(); ++i) {
      target -= dist2[i];
      if (target <= 0) {
        chosen = i;
        break;
      }
    }
    const float* v = data + rows[chosen] * dim;
    centroids.insert(centroids.end(), v, v + dim);
  }
  return centroids;
}

}  // namespace

std::vector<int32_t> AssignToCentroids(const float* data, int64_t n,
                                       int32_t dim, const float* centroids,
                                       int32_t k) {
  std::vector<int32_t> out(n);
  for (int64_t i = 0; i < n; ++i) {
    const float* v = data + i * dim;
    float best = std::numeric_limits<float>::max();
    int32_t best_c = 0;
    for (int32_t c = 0; c < k; ++c) {
      const float d = simd::L2Sqr(v, centroids + static_cast<size_t>(c) * dim,
                                  dim);
      if (d < best) {
        best = d;
        best_c = c;
      }
    }
    out[i] = best_c;
  }
  return out;
}

KMeansResult KMeans(const float* data, int64_t n, int32_t dim,
                    const KMeansOptions& opts) {
  KMeansResult result;
  result.dim = dim;
  result.k = static_cast<int32_t>(std::min<int64_t>(opts.k, n));
  if (n == 0 || result.k == 0) return result;

  std::mt19937_64 rng(opts.seed);

  // Training sample.
  const int64_t train_n =
      std::min(n, std::max<int64_t>(opts.max_train_rows,
                                    static_cast<int64_t>(64) * result.k));
  std::vector<int64_t> rows(n);
  std::iota(rows.begin(), rows.end(), 0);
  if (train_n < n) {
    std::shuffle(rows.begin(), rows.end(), rng);
    rows.resize(train_n);
  }

  result.centroids = SeedPlusPlus(data, rows, dim, result.k, &rng);

  std::vector<int32_t> assign(rows.size(), 0);
  std::vector<double> sums(static_cast<size_t>(result.k) * dim);
  std::vector<int64_t> counts(result.k);
  for (int32_t iter = 0; iter < opts.max_iters; ++iter) {
    bool changed = false;
    for (size_t i = 0; i < rows.size(); ++i) {
      const float* v = data + rows[i] * dim;
      float best = std::numeric_limits<float>::max();
      int32_t best_c = 0;
      for (int32_t c = 0; c < result.k; ++c) {
        const float d = simd::L2Sqr(
            v, result.centroids.data() + static_cast<size_t>(c) * dim, dim);
        if (d < best) {
          best = d;
          best_c = c;
        }
      }
      if (assign[i] != best_c) {
        assign[i] = best_c;
        changed = true;
      }
    }
    if (!changed && iter > 0) break;

    std::fill(sums.begin(), sums.end(), 0.0);
    std::fill(counts.begin(), counts.end(), 0);
    for (size_t i = 0; i < rows.size(); ++i) {
      const float* v = data + rows[i] * dim;
      double* s = sums.data() + static_cast<size_t>(assign[i]) * dim;
      for (int32_t d = 0; d < dim; ++d) s[d] += v[d];
      ++counts[assign[i]];
    }
    for (int32_t c = 0; c < result.k; ++c) {
      if (counts[c] == 0) {
        // Re-seed an empty cluster with a random training row.
        std::uniform_int_distribution<size_t> pick(0, rows.size() - 1);
        const float* v = data + rows[pick(rng)] * dim;
        std::copy(v, v + dim,
                  result.centroids.begin() + static_cast<size_t>(c) * dim);
        continue;
      }
      float* ctr = result.centroids.data() + static_cast<size_t>(c) * dim;
      const double* s = sums.data() + static_cast<size_t>(c) * dim;
      for (int32_t d = 0; d < dim; ++d) {
        ctr[d] = static_cast<float>(s[d] / static_cast<double>(counts[c]));
      }
    }
  }

  result.assignments =
      AssignToCentroids(data, n, dim, result.centroids.data(), result.k);
  return result;
}

KMeansResult HierarchicalKMeans(const float* data, int64_t n, int32_t dim,
                                int64_t max_leaf_rows, int32_t branch,
                                uint64_t seed) {
  KMeansResult result;
  result.dim = dim;
  result.assignments.assign(n, -1);
  if (n == 0) return result;

  struct Node {
    std::vector<int64_t> rows;
    int depth;
  };
  std::vector<Node> stack;
  {
    Node root;
    root.rows.resize(n);
    std::iota(root.rows.begin(), root.rows.end(), 0);
    root.depth = 0;
    stack.push_back(std::move(root));
  }

  uint64_t salt = 0;
  while (!stack.empty()) {
    Node node = std::move(stack.back());
    stack.pop_back();
    const int64_t size = static_cast<int64_t>(node.rows.size());
    // Depth cap guards against degenerate (all-duplicate) data.
    if (size <= max_leaf_rows || node.depth >= 24) {
      const int32_t leaf = result.k++;
      // Leaf centroid = mean of members.
      std::vector<double> mean(dim, 0.0);
      for (int64_t r : node.rows) {
        const float* v = data + r * dim;
        for (int32_t d = 0; d < dim; ++d) mean[d] += v[d];
        result.assignments[r] = leaf;
      }
      for (int32_t d = 0; d < dim; ++d) {
        result.centroids.push_back(
            static_cast<float>(mean[d] / static_cast<double>(size)));
      }
      continue;
    }

    // Cluster this node's rows into `branch` children.
    std::vector<float> sub(static_cast<size_t>(size) * dim);
    for (int64_t i = 0; i < size; ++i) {
      const float* v = data + node.rows[i] * dim;
      std::copy(v, v + dim, sub.data() + static_cast<size_t>(i) * dim);
    }
    KMeansOptions opts;
    opts.k = branch;
    opts.max_iters = 6;
    opts.seed = seed + (salt++) * 1000003;
    KMeansResult split = KMeans(sub.data(), size, dim, opts);

    std::vector<Node> children(split.k);
    for (auto& c : children) c.depth = node.depth + 1;
    for (int64_t i = 0; i < size; ++i) {
      children[split.assignments[i]].rows.push_back(node.rows[i]);
    }
    bool degenerate = false;
    for (const auto& c : children) {
      if (static_cast<int64_t>(c.rows.size()) == size) degenerate = true;
    }
    if (degenerate || split.k <= 1) {
      // Could not split (duplicates); force-cut into equal chunks.
      for (int64_t begin = 0; begin < size; begin += max_leaf_rows) {
        const int64_t end = std::min(size, begin + max_leaf_rows);
        Node chunk;
        chunk.depth = 25;  // Terminal.
        chunk.rows.assign(node.rows.begin() + begin, node.rows.begin() + end);
        stack.push_back(std::move(chunk));
      }
      continue;
    }
    for (auto& c : children) {
      if (!c.rows.empty()) stack.push_back(std::move(c));
    }
  }
  return result;
}

}  // namespace manu
