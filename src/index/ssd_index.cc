#include "index/ssd_index.h"

#include <algorithm>
#include <unordered_set>

#include "common/serde.h"
#include "index/kmeans.h"
#include "index/metric_util.h"

namespace manu {

namespace {
constexpr uint64_t kBlock = 4096;

uint64_t AlignUp(uint64_t n) { return (n + kBlock - 1) / kBlock * kBlock; }
}  // namespace

SsdBucketIndex::SsdBucketIndex(IndexParams params, ObjectStore* store,
                               std::string object_path)
    : params_(std::move(params)),
      store_(store),
      object_path_(std::move(object_path)) {
  params_.type = IndexType::kSsdBucket;
}

int64_t SsdBucketIndex::RowsPerBucket() const {
  const int64_t entry_bytes = sizeof(int64_t) + params_.dim;  // id + SQ code.
  return std::max<int64_t>(
      1, (params_.ssd_bucket_bytes - static_cast<int64_t>(sizeof(uint32_t))) /
             entry_bytes);
}

Status SsdBucketIndex::Build(const float* data, int64_t n) {
  if (params_.dim <= 0) return Status::InvalidArgument("ssd: dim not set");
  if (store_ == nullptr) return Status::InvalidArgument("ssd: null store");
  if (n == 0) return Status::InvalidArgument("ssd: empty build input");

  quantizer_.Train(data, n, params_.dim);
  const int64_t rows_per_bucket = RowsPerBucket();

  // Multi-assignment: one full hierarchical clustering per replica, each
  // assigning every row to exactly one bucket of that replica.
  struct PendingBucket {
    std::vector<int64_t> rows;
    const float* centroid;
  };
  std::vector<std::vector<int64_t>> bucket_rows;
  std::vector<float> centroids;
  std::vector<KMeansResult> replicas(params_.ssd_replicas);
  for (int32_t rep = 0; rep < params_.ssd_replicas; ++rep) {
    replicas[rep] = HierarchicalKMeans(data, n, params_.dim, rows_per_bucket,
                                       8, params_.seed + rep * 7919);
    const KMeansResult& km = replicas[rep];
    const size_t base = bucket_rows.size();
    bucket_rows.resize(base + km.k);
    centroids.insert(centroids.end(), km.centroids.begin(),
                     km.centroids.end());
    for (int64_t i = 0; i < n; ++i) {
      bucket_rows[base + km.assignments[i]].push_back(i);
    }
  }

  // Lay buckets out 4 KB-aligned in one object. Oversized leaves (forced
  // splits can exceed the target slightly) spill into multi-block buckets,
  // matching the paper's "a few times 4 KB for large vectors" note.
  std::string blob;
  buckets_.clear();
  buckets_.reserve(bucket_rows.size());
  std::vector<uint8_t> code(params_.dim);
  for (const auto& rows : bucket_rows) {
    BinaryWriter w;
    w.PutU32(static_cast<uint32_t>(rows.size()));
    for (int64_t row : rows) w.PutI64(row);
    for (int64_t row : rows) {
      quantizer_.Encode(data + row * params_.dim, code.data());
      w.PutRaw(code.data(), code.size());
    }
    BucketMeta meta;
    meta.offset = blob.size();
    meta.count = static_cast<uint32_t>(rows.size());
    const std::string payload = w.Release();
    meta.bytes = static_cast<uint32_t>(AlignUp(payload.size()));
    blob.append(payload);
    blob.append(meta.bytes - payload.size(), '\0');
    buckets_.push_back(meta);
  }
  ssd_bytes_ = blob.size();
  MANU_RETURN_NOT_OK(store_->Put(object_path_, blob));

  // DRAM centroid graph over all replicas' centroids.
  IndexParams cp;
  cp.type = IndexType::kHnsw;
  cp.metric = MetricType::kL2;  // Bucket probing is geometric.
  cp.dim = params_.dim;
  cp.hnsw_m = 16;
  cp.hnsw_ef_construction = 100;
  cp.seed = params_.seed;
  centroid_index_ = std::make_unique<HnswIndex>(cp);
  MANU_RETURN_NOT_OK(centroid_index_->Build(
      centroids.data(), static_cast<int64_t>(buckets_.size())));

  size_ = n;
  return Status::OK();
}

Result<std::vector<Neighbor>> SsdBucketIndex::Search(
    const float* query, const SearchParams& sp) const {
  if (size_ == 0) return std::vector<Neighbor>{};
  SearchParams probe;
  probe.k = static_cast<size_t>(std::min<int64_t>(
      sp.nprobe, static_cast<int64_t>(buckets_.size())));
  probe.ef_search = std::max<int32_t>(sp.ef_search, sp.nprobe * 2);
  MANU_ASSIGN_OR_RETURN(std::vector<Neighbor> probed,
                        centroid_index_->Search(query, probe));

  TopKHeap heap(sp.k * 2);  // Headroom: replica duplicates removed below.
  std::vector<float> decoded(params_.dim);
  for (const Neighbor& b : probed) {
    const BucketMeta& meta = buckets_[b.id];
    MANU_ASSIGN_OR_RETURN(
        std::string raw, store_->GetRange(object_path_, meta.offset,
                                          meta.bytes));
    BinaryReader r(raw);
    MANU_ASSIGN_OR_RETURN(uint32_t count, r.GetU32());
    if (count != meta.count) return Status::Corruption("ssd bucket header");
    std::vector<int64_t> ids(count);
    MANU_RETURN_NOT_OK(r.GetRaw(ids.data(), count * sizeof(int64_t)));
    const size_t codes_off = sizeof(uint32_t) + count * sizeof(int64_t);
    const uint8_t* codes =
        reinterpret_cast<const uint8_t*>(raw.data()) + codes_off;
    for (uint32_t i = 0; i < count; ++i) {
      if (!PassesFilters(ids[i], sp)) continue;
      heap.Push(ids[i], quantizer_.Score(query, codes + i * params_.dim,
                                         params_.metric));
    }
  }

  // Dedup replica hits, keep best sp.k.
  std::vector<Neighbor> merged = heap.TakeSorted();
  std::vector<Neighbor> out;
  out.reserve(sp.k);
  std::unordered_set<int64_t> seen;
  for (const Neighbor& nb : merged) {
    if (seen.insert(nb.id).second) {
      out.push_back(nb);
      if (out.size() >= sp.k) break;
    }
  }
  return out;
}

uint64_t SsdBucketIndex::MemoryBytes() const {
  uint64_t bytes = buckets_.size() * sizeof(BucketMeta) +
                   static_cast<uint64_t>(params_.dim) * 2 * sizeof(float);
  if (centroid_index_ != nullptr) bytes += centroid_index_->MemoryBytes();
  return bytes;
}

void SsdBucketIndex::Serialize(BinaryWriter* w) const {
  params_.Serialize(w);
  w->PutI64(size_);
  w->PutU64(ssd_bytes_);
  w->PutString(object_path_);
  quantizer_.Serialize(w);
  w->PutU32(static_cast<uint32_t>(buckets_.size()));
  for (const auto& b : buckets_) {
    w->PutU64(b.offset);
    w->PutU32(b.bytes);
    w->PutU32(b.count);
  }
  centroid_index_->Serialize(w);
}

Result<std::unique_ptr<SsdBucketIndex>> SsdBucketIndex::Deserialize(
    IndexParams params, BinaryReader* r, ObjectStore* store) {
  auto index = std::make_unique<SsdBucketIndex>(std::move(params), store, "");
  MANU_ASSIGN_OR_RETURN(index->size_, r->GetI64());
  MANU_ASSIGN_OR_RETURN(index->ssd_bytes_, r->GetU64());
  MANU_ASSIGN_OR_RETURN(index->object_path_, r->GetString());
  MANU_ASSIGN_OR_RETURN(index->quantizer_, ScalarQuantizer::Deserialize(r));
  MANU_ASSIGN_OR_RETURN(uint32_t n, r->GetU32());
  index->buckets_.resize(n);
  for (auto& b : index->buckets_) {
    MANU_ASSIGN_OR_RETURN(b.offset, r->GetU64());
    MANU_ASSIGN_OR_RETURN(b.bytes, r->GetU32());
    MANU_ASSIGN_OR_RETURN(b.count, r->GetU32());
  }
  MANU_ASSIGN_OR_RETURN(IndexParams cp, IndexParams::Deserialize(r));
  MANU_ASSIGN_OR_RETURN(index->centroid_index_,
                        HnswIndex::Deserialize(std::move(cp), r));
  return index;
}

}  // namespace manu
