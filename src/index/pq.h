#ifndef MANU_INDEX_PQ_H_
#define MANU_INDEX_PQ_H_

#include <vector>

#include "index/vector_index.h"

namespace manu {

/// Product quantizer: splits each vector into m sub-vectors and quantizes
/// each against a 256-entry codebook trained per subspace (Jegou et al.,
/// ref [45] of the paper). A query precomputes an asymmetric-distance (ADC)
/// table of m*256 partial scores; scoring a code is then m table lookups.
///
/// Cosine is handled by L2-normalizing build data and queries and running
/// the inner-product path — exact, since cosine is scale-invariant.
class ProductQuantizer {
 public:
  static constexpr int32_t kCodebookSize = 256;

  /// Trains codebooks on `n` rows (for IVF-PQ, callers pass residuals).
  Status Train(const float* data, int64_t n, int32_t dim, int32_t m,
               int32_t iters, uint64_t seed);

  int32_t dim() const { return dim_; }
  int32_t m() const { return m_; }
  int32_t sub_dim() const { return sub_dim_; }
  bool trained() const { return m_ > 0; }

  void Encode(const float* vec, uint8_t* code) const;
  void Decode(const uint8_t* code, float* vec) const;

  /// Fills `table` (m * 256 floats) with canonical partial scores for
  /// `query`: L2 uses squared sub-distances (summing gives the full squared
  /// distance), IP uses negated sub-dot-products.
  void BuildAdcTable(const float* query, MetricType metric,
                     float* table) const;

  /// Canonical score of one code against a prebuilt ADC table.
  float ScoreWithTable(const float* table, const uint8_t* code) const {
    float acc = 0;
    for (int32_t s = 0; s < m_; ++s) {
      acc += table[s * kCodebookSize + code[s]];
    }
    return acc;
  }

  void Serialize(BinaryWriter* w) const;
  static Result<ProductQuantizer> Deserialize(BinaryReader* r);

 private:
  int32_t dim_ = 0;
  int32_t m_ = 0;
  int32_t sub_dim_ = 0;
  /// m * 256 * sub_dim floats; codebook s at offset s*256*sub_dim.
  std::vector<float> codebooks_;
};

/// Flat PQ index: one m-byte code per row, ADC scan over all codes.
class PqIndex : public VectorIndex {
 public:
  explicit PqIndex(IndexParams params) : params_(std::move(params)) {
    params_.type = IndexType::kPq;
  }

  const IndexParams& params() const override { return params_; }
  int64_t Size() const override { return size_; }

  Status Build(const float* data, int64_t n) override;
  Result<std::vector<Neighbor>> Search(
      const float* query, const SearchParams& params) const override;
  uint64_t MemoryBytes() const override;

  void Serialize(BinaryWriter* w) const override;
  static Result<std::unique_ptr<PqIndex>> Deserialize(IndexParams params,
                                                      BinaryReader* r);

 private:
  IndexParams params_;
  int64_t size_ = 0;
  ProductQuantizer pq_;
  std::vector<uint8_t> codes_;  ///< size_ * m bytes.
};

/// IVF-PQ: coarse k-means lists; rows stored as PQ codes of their residual
/// from the list centroid. The workhorse for large memory-constrained
/// collections.
class IvfPqIndex : public VectorIndex {
 public:
  explicit IvfPqIndex(IndexParams params) : params_(std::move(params)) {
    params_.type = IndexType::kIvfPq;
  }

  const IndexParams& params() const override { return params_; }
  int64_t Size() const override { return size_; }

  Status Build(const float* data, int64_t n) override;
  Result<std::vector<Neighbor>> Search(
      const float* query, const SearchParams& params) const override;
  uint64_t MemoryBytes() const override;

  void Serialize(BinaryWriter* w) const override;
  static Result<std::unique_ptr<IvfPqIndex>> Deserialize(IndexParams params,
                                                         BinaryReader* r);

 private:
  IndexParams params_;
  int64_t size_ = 0;
  ProductQuantizer pq_;
  std::vector<float> centroids_;
  std::vector<std::vector<int64_t>> ids_;
  std::vector<std::vector<uint8_t>> codes_;  ///< Residual codes per list.
};

}  // namespace manu

#endif  // MANU_INDEX_PQ_H_
