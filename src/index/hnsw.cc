#include "index/hnsw.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "index/metric_util.h"

namespace manu {

HnswIndex::HnswIndex(IndexParams params)
    : params_(std::move(params)), rng_(params_.seed) {
  params_.type = IndexType::kHnsw;
  level_mult_ = 1.0 / std::log(std::max(2, params_.hnsw_m));
}

float HnswIndex::Dist(const float* a, const float* b) const {
  return MetricScore(a, b, params_.dim, params_.metric);
}

Status HnswIndex::Build(const float* data, int64_t n) {
  data_.clear();
  levels_.clear();
  links_.clear();
  entry_point_ = -1;
  max_level_ = -1;
  return Add(data, n);
}

Status HnswIndex::Add(const float* data, int64_t n) {
  if (params_.dim <= 0) return Status::InvalidArgument("hnsw: dim not set");
  const int32_t first = static_cast<int32_t>(levels_.size());
  data_.insert(data_.end(), data, data + n * params_.dim);
  std::uniform_real_distribution<double> uni(0.0, 1.0);
  for (int64_t i = 0; i < n; ++i) {
    double u = uni(rng_);
    if (u <= 0) u = 1e-12;
    const int32_t level =
        static_cast<int32_t>(std::floor(-std::log(u) * level_mult_));
    levels_.push_back(level);
    links_.emplace_back(static_cast<size_t>(level) + 1);
    InsertNode(first + static_cast<int32_t>(i));
  }
  return Status::OK();
}

int32_t HnswIndex::GreedyStep(const float* query, int32_t entry,
                              int32_t level) const {
  int32_t current = entry;
  float best = Dist(query, Vec(current));
  bool improved = true;
  while (improved) {
    improved = false;
    for (int32_t nb : links_[current][level]) {
      const float d = Dist(query, Vec(nb));
      if (d < best) {
        best = d;
        current = nb;
        improved = true;
      }
    }
  }
  return current;
}

std::vector<Neighbor> HnswIndex::SearchLayer(
    const float* query, int32_t entry, int32_t ef, int32_t level,
    std::vector<uint8_t>* visited) const {
  // `candidates`: min-heap by score (closest expanded first).
  // `best`: bounded max-heap of ef results (worst on top).
  struct CloserFirst {
    bool operator()(const Neighbor& a, const Neighbor& b) const {
      return b < a;
    }
  };
  std::priority_queue<Neighbor, std::vector<Neighbor>, CloserFirst>
      candidates;
  TopKHeap best(ef);

  const float d0 = Dist(query, Vec(entry));
  candidates.push({entry, d0});
  best.Push(entry, d0);
  (*visited)[entry] = 1;

  while (!candidates.empty()) {
    const Neighbor cur = candidates.top();
    if (best.Full() && cur.score > best.Worst()) break;
    candidates.pop();
    for (int32_t nb : links_[cur.id][level]) {
      if ((*visited)[nb]) continue;
      (*visited)[nb] = 1;
      const float d = Dist(query, Vec(nb));
      if (!best.Full() || d < best.Worst()) {
        candidates.push({nb, d});
        best.Push(nb, d);
      }
    }
  }
  return best.TakeSorted();
}

std::vector<Neighbor> HnswIndex::SearchLayerFiltered(
    const float* query, int32_t entry, int32_t ef, size_t k,
    const SearchParams& sp, std::vector<uint8_t>* visited) const {
  // `beam` bounds the traversal over ALL nodes — a masked-out node still
  // routes, which keeps the graph connected under selective filters — while
  // `results` collects only rows that pass the masks.
  struct CloserFirst {
    bool operator()(const Neighbor& a, const Neighbor& b) const {
      return b < a;
    }
  };
  std::priority_queue<Neighbor, std::vector<Neighbor>, CloserFirst>
      candidates;
  TopKHeap beam(ef);
  TopKHeap results(k);

  const float d0 = Dist(query, Vec(entry));
  candidates.push({entry, d0});
  beam.Push(entry, d0);
  if (PassesFilters(entry, sp)) results.Push(entry, d0);
  (*visited)[entry] = 1;

  while (!candidates.empty()) {
    const Neighbor cur = candidates.top();
    if (beam.Full() && cur.score > beam.Worst()) break;
    candidates.pop();
    for (int32_t nb : links_[cur.id][0]) {
      if ((*visited)[nb]) continue;
      (*visited)[nb] = 1;
      const float d = Dist(query, Vec(nb));
      if (!beam.Full() || d < beam.Worst()) {
        candidates.push({nb, d});
        beam.Push(nb, d);
        if (PassesFilters(nb, sp)) results.Push(nb, d);
      }
    }
  }
  return results.TakeSorted();
}

void HnswIndex::SelectNeighbors(std::vector<Neighbor>* candidates,
                                int32_t max_m) const {
  // Heuristic from the HNSW paper: keep a candidate only if it is closer to
  // the query point than to every already-kept neighbor; this spreads links
  // across directions instead of clustering them.
  if (static_cast<int32_t>(candidates->size()) <= max_m) return;
  std::vector<Neighbor> kept;
  kept.reserve(max_m);
  for (const Neighbor& c : *candidates) {
    if (static_cast<int32_t>(kept.size()) >= max_m) break;
    bool ok = true;
    for (const Neighbor& k : kept) {
      if (Dist(Vec(c.id), Vec(k.id)) < c.score) {
        ok = false;
        break;
      }
    }
    if (ok) kept.push_back(c);
  }
  // Backfill with closest skipped candidates if the heuristic was too picky.
  for (const Neighbor& c : *candidates) {
    if (static_cast<int32_t>(kept.size()) >= max_m) break;
    if (std::find(kept.begin(), kept.end(), c) == kept.end()) {
      kept.push_back(c);
    }
  }
  *candidates = std::move(kept);
}

void HnswIndex::InsertNode(int32_t node) {
  const int32_t level = levels_[node];
  if (entry_point_ < 0) {
    entry_point_ = node;
    max_level_ = level;
    return;
  }

  const float* query = Vec(node);
  int32_t entry = entry_point_;
  // Greedy descent through levels above the node's level.
  for (int32_t l = max_level_; l > level; --l) {
    entry = GreedyStep(query, entry, std::min(l, max_level_));
  }

  std::vector<uint8_t> visited(levels_.size(), 0);
  for (int32_t l = std::min(level, max_level_); l >= 0; --l) {
    std::fill(visited.begin(), visited.end(), 0);
    std::vector<Neighbor> candidates =
        SearchLayer(query, entry, params_.hnsw_ef_construction, l, &visited);
    // Drop self-matches (duplicate vectors give score 0 but self never
    // appears since `node` has no links yet and wasn't the entry).
    SelectNeighbors(&candidates, params_.hnsw_m);
    auto& my_links = links_[node][l];
    for (const Neighbor& c : candidates) {
      my_links.push_back(static_cast<int32_t>(c.id));
      // Bidirectional link with pruning on the peer.
      auto& peer = links_[c.id][l];
      peer.push_back(node);
      const int32_t max_m = MaxLinks(l);
      if (static_cast<int32_t>(peer.size()) > max_m) {
        std::vector<Neighbor> peer_cands;
        peer_cands.reserve(peer.size());
        const float* pv = Vec(static_cast<int32_t>(c.id));
        for (int32_t nb : peer) {
          peer_cands.push_back({nb, Dist(pv, Vec(nb))});
        }
        std::sort(peer_cands.begin(), peer_cands.end());
        SelectNeighbors(&peer_cands, max_m);
        peer.clear();
        for (const Neighbor& pc : peer_cands) {
          peer.push_back(static_cast<int32_t>(pc.id));
        }
      }
    }
    if (!candidates.empty()) {
      entry = static_cast<int32_t>(candidates.front().id);
    }
  }

  if (level > max_level_) {
    max_level_ = level;
    entry_point_ = node;
  }
}

Result<std::vector<Neighbor>> HnswIndex::Search(
    const float* query, const SearchParams& sp) const {
  if (entry_point_ < 0) return std::vector<Neighbor>{};
  int32_t entry = entry_point_;
  for (int32_t l = max_level_; l > 0; --l) {
    entry = GreedyStep(query, entry, l);
  }
  const int32_t ef =
      std::max<int32_t>(sp.ef_search, static_cast<int32_t>(sp.k));
  std::vector<uint8_t> visited(levels_.size(), 0);
  const bool has_masks = sp.allowed != nullptr || sp.deleted != nullptr ||
                         sp.visible_rows < Size();
  if (sp.filtered_traversal && has_masks) {
    // Visiting-filter traversal with adaptive ef: when the filter is so
    // selective that the beam surfaces fewer than k passing rows, double ef
    // (up to ef * traversal_ef_cap) and retry instead of starving.
    const int32_t max_ef = static_cast<int32_t>(std::min<double>(
        static_cast<double>(std::max<int64_t>(Size(), 1)),
        std::max(1.0, sp.traversal_ef_cap) * ef));
    int32_t cur_ef = ef;
    std::vector<Neighbor> out;
    while (true) {
      std::fill(visited.begin(), visited.end(), 0);
      out = SearchLayerFiltered(query, entry, cur_ef, sp.k, sp, &visited);
      if (out.size() >= sp.k || cur_ef >= max_ef) break;
      cur_ef = std::min(max_ef, cur_ef * 2);
    }
    return out;
  }
  std::vector<Neighbor> found = SearchLayer(query, entry, ef, 0, &visited);
  // Filters are applied post-traversal: the beam explores the graph
  // unfiltered (filtered nodes still route), only results are masked.
  std::vector<Neighbor> out;
  out.reserve(sp.k);
  for (const Neighbor& n : found) {
    if (!PassesFilters(n.id, sp)) continue;
    out.push_back(n);
    if (out.size() >= sp.k) break;
  }
  return out;
}

uint64_t HnswIndex::MemoryBytes() const {
  uint64_t bytes = data_.size() * sizeof(float) +
                   levels_.size() * sizeof(int32_t);
  for (const auto& node : links_) {
    for (const auto& level : node) bytes += level.size() * sizeof(int32_t);
  }
  return bytes;
}

void HnswIndex::Serialize(BinaryWriter* w) const {
  params_.Serialize(w);
  w->PutVector(data_);
  w->PutVector(levels_);
  w->PutI32(entry_point_);
  w->PutI32(max_level_);
  for (const auto& node : links_) {
    w->PutU32(static_cast<uint32_t>(node.size()));
    for (const auto& level : node) w->PutVector(level);
  }
}

Result<std::unique_ptr<HnswIndex>> HnswIndex::Deserialize(IndexParams params,
                                                          BinaryReader* r) {
  auto index = std::make_unique<HnswIndex>(std::move(params));
  MANU_ASSIGN_OR_RETURN(index->data_, r->GetVector<float>());
  MANU_ASSIGN_OR_RETURN(index->levels_, r->GetVector<int32_t>());
  MANU_ASSIGN_OR_RETURN(index->entry_point_, r->GetI32());
  MANU_ASSIGN_OR_RETURN(index->max_level_, r->GetI32());
  index->links_.resize(index->levels_.size());
  for (auto& node : index->links_) {
    MANU_ASSIGN_OR_RETURN(uint32_t n_levels, r->GetU32());
    node.resize(n_levels);
    for (auto& level : node) {
      MANU_ASSIGN_OR_RETURN(level, r->GetVector<int32_t>());
    }
  }
  return index;
}

}  // namespace manu
