#include "index/imi.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <queue>

#include "index/kmeans.h"
#include "index/metric_util.h"

namespace manu {

Status ImiIndex::Build(const float* data, int64_t n) {
  if (params_.dim < 2) return Status::InvalidArgument("imi: dim too small");
  if (n == 0) return Status::InvalidArgument("imi: empty build input");
  // K per half ~ sqrt of the flat nlist budget, floor 4: K*K cells total.
  k_ = std::max<int32_t>(
      4, static_cast<int32_t>(std::lround(std::sqrt(params_.nlist))) * 4);
  half_ = params_.dim / 2;
  const int32_t rest = params_.dim - half_;

  // Split columns into two halves.
  std::vector<float> h1(static_cast<size_t>(n) * half_);
  std::vector<float> h2(static_cast<size_t>(n) * rest);
  for (int64_t i = 0; i < n; ++i) {
    const float* v = data + i * params_.dim;
    std::copy(v, v + half_, h1.data() + i * half_);
    std::copy(v + half_, v + params_.dim, h2.data() + i * rest);
  }
  KMeansOptions opts;
  opts.k = k_;
  opts.max_iters = params_.train_iters;
  opts.seed = params_.seed;
  opts.max_train_rows =
      std::max<int64_t>(static_cast<int64_t>(64) * k_, 20000);
  KMeansResult km1 = KMeans(h1.data(), n, half_, opts);
  opts.seed = params_.seed + 1;
  KMeansResult km2 = KMeans(h2.data(), n, rest, opts);
  k_ = std::min(km1.k, km2.k);  // Tiny inputs may shrink k.
  centroids1_ = std::move(km1.centroids);
  centroids2_ = std::move(km2.centroids);

  // Sparse cell assembly (most of the K*K cells are empty).
  std::map<int32_t, std::vector<int64_t>> cells;
  for (int64_t i = 0; i < n; ++i) {
    const int32_t c1 = std::min(km1.assignments[i], k_ - 1);
    const int32_t c2 = std::min(km2.assignments[i], k_ - 1);
    cells[CellOf(c1, c2)].push_back(i);
  }
  cell_ids_.clear();
  ids_.clear();
  vectors_.clear();
  for (auto& [cell, rows] : cells) {
    cell_ids_.push_back(cell);
    std::vector<float> vecs;
    vecs.reserve(rows.size() * params_.dim);
    for (int64_t row : rows) {
      const float* v = data + row * params_.dim;
      vecs.insert(vecs.end(), v, v + params_.dim);
    }
    ids_.push_back(std::move(rows));
    vectors_.push_back(std::move(vecs));
  }
  size_ = n;
  return Status::OK();
}

Result<std::vector<Neighbor>> ImiIndex::Search(const float* query,
                                               const SearchParams& sp) const {
  if (size_ == 0) return std::vector<Neighbor>{};
  const int32_t rest = params_.dim - half_;

  // Rank half-centroids by distance to the query halves.
  std::vector<std::pair<float, int32_t>> d1(k_), d2(k_);
  for (int32_t c = 0; c < k_; ++c) {
    d1[c] = {simd::L2Sqr(query,
                         centroids1_.data() + static_cast<size_t>(c) * half_,
                         half_),
             c};
    d2[c] = {simd::L2Sqr(query + half_,
                         centroids2_.data() + static_cast<size_t>(c) * rest,
                         rest),
             c};
  }
  std::sort(d1.begin(), d1.end());
  std::sort(d2.begin(), d2.end());

  // Multi-sequence traversal: cells (i, j) — indices into the sorted half
  // rankings — popped in increasing d1[i] + d2[j].
  struct Frontier {
    float dist;
    int32_t i, j;
    bool operator>(const Frontier& other) const { return dist > other.dist; }
  };
  std::priority_queue<Frontier, std::vector<Frontier>, std::greater<>> pq;
  std::vector<uint8_t> pushed(static_cast<size_t>(k_) * k_, 0);
  auto push = [&](int32_t i, int32_t j) {
    if (i >= k_ || j >= k_) return;
    uint8_t& flag = pushed[static_cast<size_t>(i) * k_ + j];
    if (flag) return;
    flag = 1;
    pq.push({d1[i].first + d2[j].first, i, j});
  };
  push(0, 0);

  // Scan budget: nprobe "average cells" worth of rows.
  const int64_t avg_cell =
      std::max<int64_t>(1, size_ / std::max<size_t>(1, ids_.size()));
  const int64_t budget_rows =
      std::max<int64_t>(static_cast<int64_t>(sp.k),
                        static_cast<int64_t>(sp.nprobe) * avg_cell * 4);

  TopKHeap heap(sp.k);
  std::vector<float> scores;
  int64_t scanned = 0;
  while (!pq.empty() && scanned < budget_rows) {
    const Frontier f = pq.top();
    pq.pop();
    push(f.i + 1, f.j);
    push(f.i, f.j + 1);
    const int32_t cell = CellOf(d1[f.i].second, d2[f.j].second);
    const auto it =
        std::lower_bound(cell_ids_.begin(), cell_ids_.end(), cell);
    if (it == cell_ids_.end() || *it != cell) continue;  // Empty cell.
    const size_t slot = it - cell_ids_.begin();
    const auto& rows = ids_[slot];
    scores.resize(rows.size());
    MetricScoreBatch(query, vectors_[slot].data(), rows.size(), params_.dim,
                     params_.metric, scores.data());
    for (size_t i = 0; i < rows.size(); ++i) {
      if (!PassesFilters(rows[i], sp)) continue;
      heap.Push(rows[i], scores[i]);
    }
    scanned += static_cast<int64_t>(rows.size());
  }
  return heap.TakeSorted();
}

uint64_t ImiIndex::MemoryBytes() const {
  uint64_t bytes = (centroids1_.size() + centroids2_.size()) * sizeof(float) +
                   cell_ids_.size() * sizeof(int32_t);
  for (const auto& ids : ids_) bytes += ids.size() * sizeof(int64_t);
  for (const auto& v : vectors_) bytes += v.size() * sizeof(float);
  return bytes;
}

int64_t ImiIndex::NumNonEmptyCells() const {
  return static_cast<int64_t>(cell_ids_.size());
}

void ImiIndex::Serialize(BinaryWriter* w) const {
  params_.Serialize(w);
  w->PutI64(size_);
  w->PutI32(k_);
  w->PutI32(half_);
  w->PutVector(centroids1_);
  w->PutVector(centroids2_);
  w->PutVector(cell_ids_);
  w->PutU32(static_cast<uint32_t>(ids_.size()));
  for (size_t i = 0; i < ids_.size(); ++i) {
    w->PutVector(ids_[i]);
    w->PutVector(vectors_[i]);
  }
}

Result<std::unique_ptr<ImiIndex>> ImiIndex::Deserialize(IndexParams params,
                                                        BinaryReader* r) {
  auto index = std::make_unique<ImiIndex>(std::move(params));
  MANU_ASSIGN_OR_RETURN(index->size_, r->GetI64());
  MANU_ASSIGN_OR_RETURN(index->k_, r->GetI32());
  MANU_ASSIGN_OR_RETURN(index->half_, r->GetI32());
  MANU_ASSIGN_OR_RETURN(index->centroids1_, r->GetVector<float>());
  MANU_ASSIGN_OR_RETURN(index->centroids2_, r->GetVector<float>());
  MANU_ASSIGN_OR_RETURN(index->cell_ids_, r->GetVector<int32_t>());
  MANU_ASSIGN_OR_RETURN(uint32_t cells, r->GetU32());
  index->ids_.resize(cells);
  index->vectors_.resize(cells);
  for (uint32_t i = 0; i < cells; ++i) {
    MANU_ASSIGN_OR_RETURN(index->ids_[i], r->GetVector<int64_t>());
    MANU_ASSIGN_OR_RETURN(index->vectors_[i], r->GetVector<float>());
  }
  return index;
}

}  // namespace manu
