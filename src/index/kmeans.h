#ifndef MANU_INDEX_KMEANS_H_
#define MANU_INDEX_KMEANS_H_

#include <cstdint>
#include <vector>

namespace manu {

struct KMeansResult {
  int32_t k = 0;
  int32_t dim = 0;
  std::vector<float> centroids;     ///< k * dim, row-major.
  std::vector<int32_t> assignments; ///< One per input row.
};

struct KMeansOptions {
  int32_t k = 8;
  int32_t max_iters = 10;
  uint64_t seed = 42;
  /// Training sample cap: with n rows and cap s, Lloyd runs on
  /// min(n, max(s, 64*k)) rows, then all rows are assigned once at the end.
  int64_t max_train_rows = 200000;
};

/// Lloyd's k-means with k-means++ seeding (always L2 space; inverted files
/// over IP/cosine data still cluster in L2, the standard Faiss convention).
/// Empty clusters are re-seeded from the largest cluster's farthest member.
KMeansResult KMeans(const float* data, int64_t n, int32_t dim,
                    const KMeansOptions& opts);

/// Assigns each of `n` rows to its nearest centroid.
std::vector<int32_t> AssignToCentroids(const float* data, int64_t n,
                                       int32_t dim, const float* centroids,
                                       int32_t k);

/// Hierarchical (recursive bisecting-style) k-means used by the SSD bucket
/// index (Section 4.4): splits clusters with `branch` children until every
/// leaf holds <= max_leaf_rows rows, controlling bucket byte size. Returns
/// flat leaf centroids and per-row leaf assignments.
KMeansResult HierarchicalKMeans(const float* data, int64_t n, int32_t dim,
                                int64_t max_leaf_rows, int32_t branch,
                                uint64_t seed);

}  // namespace manu

#endif  // MANU_INDEX_KMEANS_H_
