#include "index/pq.h"

#include <algorithm>
#include <cmath>

#include "index/kmeans.h"
#include "index/metric_util.h"

namespace manu {

namespace {
/// Copies rows normalized to unit length (cosine -> IP reduction).
std::vector<float> NormalizedCopy(const float* data, int64_t n, int32_t dim) {
  std::vector<float> out(data, data + n * dim);
  for (int64_t i = 0; i < n; ++i) {
    float* v = out.data() + i * dim;
    const float norm = std::sqrt(simd::L2NormSqr(v, dim));
    if (norm > 0) {
      for (int32_t d = 0; d < dim; ++d) v[d] /= norm;
    }
  }
  return out;
}

/// Effective metric after the cosine->IP reduction.
MetricType EffectiveMetric(MetricType metric) {
  return metric == MetricType::kCosine ? MetricType::kInnerProduct : metric;
}
}  // namespace

// ---------------------------------------------------------------------------
// ProductQuantizer
// ---------------------------------------------------------------------------

Status ProductQuantizer::Train(const float* data, int64_t n, int32_t dim,
                               int32_t m, int32_t iters, uint64_t seed) {
  if (m <= 0 || dim % m != 0) {
    return Status::InvalidArgument("pq: dim must be divisible by m");
  }
  dim_ = dim;
  m_ = m;
  sub_dim_ = dim / m;
  codebooks_.assign(
      static_cast<size_t>(m_) * kCodebookSize * sub_dim_, 0.0f);

  std::vector<float> sub(static_cast<size_t>(n) * sub_dim_);
  for (int32_t s = 0; s < m_; ++s) {
    for (int64_t i = 0; i < n; ++i) {
      const float* src = data + i * dim_ + s * sub_dim_;
      std::copy(src, src + sub_dim_, sub.data() + i * sub_dim_);
    }
    KMeansOptions opts;
    opts.k = kCodebookSize;
    opts.max_iters = iters;
    opts.seed = seed + s;
    KMeansResult km = KMeans(sub.data(), n, sub_dim_, opts);
    // km.k may be < 256 for tiny training sets; pad by repeating centroids.
    float* book =
        codebooks_.data() + static_cast<size_t>(s) * kCodebookSize * sub_dim_;
    for (int32_t c = 0; c < kCodebookSize; ++c) {
      const float* src =
          km.centroids.data() + static_cast<size_t>(c % km.k) * sub_dim_;
      std::copy(src, src + sub_dim_, book + static_cast<size_t>(c) * sub_dim_);
    }
  }
  return Status::OK();
}

void ProductQuantizer::Encode(const float* vec, uint8_t* code) const {
  for (int32_t s = 0; s < m_; ++s) {
    const float* sub = vec + s * sub_dim_;
    const float* book =
        codebooks_.data() + static_cast<size_t>(s) * kCodebookSize * sub_dim_;
    float best = std::numeric_limits<float>::max();
    int32_t best_c = 0;
    for (int32_t c = 0; c < kCodebookSize; ++c) {
      const float d =
          simd::L2Sqr(sub, book + static_cast<size_t>(c) * sub_dim_, sub_dim_);
      if (d < best) {
        best = d;
        best_c = c;
      }
    }
    code[s] = static_cast<uint8_t>(best_c);
  }
}

void ProductQuantizer::Decode(const uint8_t* code, float* vec) const {
  for (int32_t s = 0; s < m_; ++s) {
    const float* book =
        codebooks_.data() + static_cast<size_t>(s) * kCodebookSize * sub_dim_;
    const float* c = book + static_cast<size_t>(code[s]) * sub_dim_;
    std::copy(c, c + sub_dim_, vec + s * sub_dim_);
  }
}

void ProductQuantizer::BuildAdcTable(const float* query, MetricType metric,
                                     float* table) const {
  for (int32_t s = 0; s < m_; ++s) {
    const float* sub = query + s * sub_dim_;
    const float* book =
        codebooks_.data() + static_cast<size_t>(s) * kCodebookSize * sub_dim_;
    float* row = table + static_cast<size_t>(s) * kCodebookSize;
    for (int32_t c = 0; c < kCodebookSize; ++c) {
      const float* ctr = book + static_cast<size_t>(c) * sub_dim_;
      row[c] = metric == MetricType::kL2
                   ? simd::L2Sqr(sub, ctr, sub_dim_)
                   : -simd::InnerProduct(sub, ctr, sub_dim_);
    }
  }
}

void ProductQuantizer::Serialize(BinaryWriter* w) const {
  w->PutI32(dim_);
  w->PutI32(m_);
  w->PutVector(codebooks_);
}

Result<ProductQuantizer> ProductQuantizer::Deserialize(BinaryReader* r) {
  ProductQuantizer pq;
  MANU_ASSIGN_OR_RETURN(pq.dim_, r->GetI32());
  MANU_ASSIGN_OR_RETURN(pq.m_, r->GetI32());
  pq.sub_dim_ = pq.m_ > 0 ? pq.dim_ / pq.m_ : 0;
  MANU_ASSIGN_OR_RETURN(pq.codebooks_, r->GetVector<float>());
  return pq;
}

// ---------------------------------------------------------------------------
// PqIndex
// ---------------------------------------------------------------------------

Status PqIndex::Build(const float* data, int64_t n) {
  if (params_.dim <= 0) return Status::InvalidArgument("pq: dim not set");
  std::vector<float> normalized;
  if (params_.metric == MetricType::kCosine) {
    normalized = NormalizedCopy(data, n, params_.dim);
    data = normalized.data();
  }
  MANU_RETURN_NOT_OK(pq_.Train(data, n, params_.dim, params_.pq_m,
                               params_.train_iters, params_.seed));
  codes_.resize(static_cast<size_t>(n) * params_.pq_m);
  for (int64_t i = 0; i < n; ++i) {
    pq_.Encode(data + i * params_.dim, codes_.data() + i * params_.pq_m);
  }
  size_ = n;
  return Status::OK();
}

Result<std::vector<Neighbor>> PqIndex::Search(const float* query,
                                              const SearchParams& sp) const {
  std::vector<float> qnorm;
  if (params_.metric == MetricType::kCosine) {
    qnorm = NormalizedCopy(query, 1, params_.dim);
    query = qnorm.data();
  }
  std::vector<float> table(
      static_cast<size_t>(pq_.m()) * ProductQuantizer::kCodebookSize);
  pq_.BuildAdcTable(query, EffectiveMetric(params_.metric), table.data());

  TopKHeap heap(sp.k);
  for (int64_t i = 0; i < size_; ++i) {
    if (!PassesFilters(i, sp)) continue;
    heap.Push(i, pq_.ScoreWithTable(table.data(),
                                    codes_.data() + i * params_.pq_m));
  }
  return heap.TakeSorted();
}

uint64_t PqIndex::MemoryBytes() const {
  return codes_.size() +
         static_cast<uint64_t>(pq_.m()) * ProductQuantizer::kCodebookSize *
             pq_.sub_dim() * sizeof(float);
}

void PqIndex::Serialize(BinaryWriter* w) const {
  params_.Serialize(w);
  w->PutI64(size_);
  pq_.Serialize(w);
  w->PutVector(codes_);
}

Result<std::unique_ptr<PqIndex>> PqIndex::Deserialize(IndexParams params,
                                                      BinaryReader* r) {
  auto index = std::make_unique<PqIndex>(std::move(params));
  MANU_ASSIGN_OR_RETURN(index->size_, r->GetI64());
  MANU_ASSIGN_OR_RETURN(index->pq_, ProductQuantizer::Deserialize(r));
  MANU_ASSIGN_OR_RETURN(index->codes_, r->GetVector<uint8_t>());
  return index;
}

// ---------------------------------------------------------------------------
// IvfPqIndex
// ---------------------------------------------------------------------------

Status IvfPqIndex::Build(const float* data, int64_t n) {
  if (params_.dim <= 0) return Status::InvalidArgument("ivf_pq: dim not set");
  if (n == 0) return Status::InvalidArgument("ivf_pq: empty build input");
  std::vector<float> normalized;
  if (params_.metric == MetricType::kCosine) {
    normalized = NormalizedCopy(data, n, params_.dim);
    data = normalized.data();
  }

  KMeansOptions opts;
  opts.k = params_.nlist;
  opts.max_iters = params_.train_iters;
  opts.seed = params_.seed;
  // Faiss-style training budget: Lloyd runs on a bounded sample (64 points
  // per centroid, floor 20k) so build cost stays linear in nlist, not rows.
  opts.max_train_rows =
      std::max<int64_t>(static_cast<int64_t>(64) * opts.k, 20000);
  KMeansResult km = KMeans(data, n, params_.dim, opts);
  centroids_ = std::move(km.centroids);

  // PQ is trained on residuals.
  std::vector<float> residuals(static_cast<size_t>(n) * params_.dim);
  for (int64_t i = 0; i < n; ++i) {
    const float* v = data + i * params_.dim;
    const float* c = centroids_.data() +
                     static_cast<size_t>(km.assignments[i]) * params_.dim;
    float* r = residuals.data() + i * params_.dim;
    for (int32_t d = 0; d < params_.dim; ++d) r[d] = v[d] - c[d];
  }
  MANU_RETURN_NOT_OK(pq_.Train(residuals.data(), n, params_.dim, params_.pq_m,
                               params_.train_iters, params_.seed));

  ids_.assign(km.k, {});
  codes_.assign(km.k, {});
  std::vector<uint8_t> code(params_.pq_m);
  for (int64_t i = 0; i < n; ++i) {
    const int32_t list = km.assignments[i];
    ids_[list].push_back(i);
    pq_.Encode(residuals.data() + i * params_.dim, code.data());
    codes_[list].insert(codes_[list].end(), code.begin(), code.end());
  }
  size_ = n;
  return Status::OK();
}

Result<std::vector<Neighbor>> IvfPqIndex::Search(
    const float* query, const SearchParams& sp) const {
  if (size_ == 0) return std::vector<Neighbor>{};
  std::vector<float> qnorm;
  if (params_.metric == MetricType::kCosine) {
    qnorm = NormalizedCopy(query, 1, params_.dim);
    query = qnorm.data();
  }
  const MetricType metric = EffectiveMetric(params_.metric);

  const int32_t nlist = static_cast<int32_t>(ids_.size());
  const int32_t nprobe = std::min(sp.nprobe, nlist);
  std::vector<std::pair<float, int32_t>> scored(nlist);
  for (int32_t c = 0; c < nlist; ++c) {
    scored[c] = {simd::L2Sqr(query,
                             centroids_.data() +
                                 static_cast<size_t>(c) * params_.dim,
                             params_.dim),
                 c};
  }
  std::partial_sort(scored.begin(), scored.begin() + nprobe, scored.end());

  TopKHeap heap(sp.k);
  std::vector<float> residual(params_.dim);
  std::vector<float> table(
      static_cast<size_t>(pq_.m()) * ProductQuantizer::kCodebookSize);
  // For IP, q·(c + r) = q·c + q·r: the ADC table uses the full query and is
  // list-independent; q·c enters as a per-list bias. For L2,
  // ||q - (c + r)||^2 = ||(q - c) - r||^2: the table uses the residual query
  // and must be rebuilt per probed list.
  if (metric == MetricType::kInnerProduct) {
    pq_.BuildAdcTable(query, metric, table.data());
  }
  for (int32_t p = 0; p < nprobe; ++p) {
    const int32_t list = scored[p].second;
    const auto& ids = ids_[list];
    if (ids.empty()) continue;
    const float* c =
        centroids_.data() + static_cast<size_t>(list) * params_.dim;
    float bias = 0.0f;
    if (metric == MetricType::kL2) {
      for (int32_t d = 0; d < params_.dim; ++d) residual[d] = query[d] - c[d];
      pq_.BuildAdcTable(residual.data(), metric, table.data());
    } else {
      bias = -simd::InnerProduct(query, c, params_.dim);
    }
    const uint8_t* codes = codes_[list].data();
    for (size_t i = 0; i < ids.size(); ++i) {
      if (!PassesFilters(ids[i], sp)) continue;
      heap.Push(ids[i], bias + pq_.ScoreWithTable(
                                   table.data(), codes + i * params_.pq_m));
    }
  }
  return heap.TakeSorted();
}

uint64_t IvfPqIndex::MemoryBytes() const {
  uint64_t bytes = centroids_.size() * sizeof(float) +
                   static_cast<uint64_t>(pq_.m()) *
                       ProductQuantizer::kCodebookSize * pq_.sub_dim() *
                       sizeof(float);
  for (const auto& ids : ids_) bytes += ids.size() * sizeof(int64_t);
  for (const auto& c : codes_) bytes += c.size();
  return bytes;
}

void IvfPqIndex::Serialize(BinaryWriter* w) const {
  params_.Serialize(w);
  w->PutI64(size_);
  pq_.Serialize(w);
  w->PutVector(centroids_);
  w->PutU32(static_cast<uint32_t>(ids_.size()));
  for (size_t i = 0; i < ids_.size(); ++i) {
    w->PutVector(ids_[i]);
    w->PutVector(codes_[i]);
  }
}

Result<std::unique_ptr<IvfPqIndex>> IvfPqIndex::Deserialize(
    IndexParams params, BinaryReader* r) {
  auto index = std::make_unique<IvfPqIndex>(std::move(params));
  MANU_ASSIGN_OR_RETURN(index->size_, r->GetI64());
  MANU_ASSIGN_OR_RETURN(index->pq_, ProductQuantizer::Deserialize(r));
  MANU_ASSIGN_OR_RETURN(index->centroids_, r->GetVector<float>());
  MANU_ASSIGN_OR_RETURN(uint32_t nlist, r->GetU32());
  index->ids_.resize(nlist);
  index->codes_.resize(nlist);
  for (uint32_t i = 0; i < nlist; ++i) {
    MANU_ASSIGN_OR_RETURN(index->ids_[i], r->GetVector<int64_t>());
    MANU_ASSIGN_OR_RETURN(index->codes_[i], r->GetVector<uint8_t>());
  }
  return index;
}

}  // namespace manu
