#include "index/index_factory.h"

#include "index/flat_index.h"
#include "index/hnsw.h"
#include "index/imi.h"
#include "index/ivf_flat.h"
#include "index/pq.h"
#include "index/rq.h"
#include "index/sq.h"
#include "index/ssd_index.h"

namespace manu {

Result<std::unique_ptr<VectorIndex>> CreateVectorIndex(
    const IndexParams& params, ObjectStore* store,
    const std::string& ssd_path) {
  switch (params.type) {
    case IndexType::kFlat:
      return std::unique_ptr<VectorIndex>(new FlatIndex(params));
    case IndexType::kIvfFlat:
    case IndexType::kIvfHnsw:
      return std::unique_ptr<VectorIndex>(new IvfFlatIndex(params));
    case IndexType::kRq:
      return std::unique_ptr<VectorIndex>(new RqIndex(params));
    case IndexType::kImi:
      return std::unique_ptr<VectorIndex>(new ImiIndex(params));
    case IndexType::kIvfSq:
      return std::unique_ptr<VectorIndex>(new IvfSqIndex(params));
    case IndexType::kSq8:
      return std::unique_ptr<VectorIndex>(new Sq8Index(params));
    case IndexType::kPq:
      return std::unique_ptr<VectorIndex>(new PqIndex(params));
    case IndexType::kIvfPq:
      return std::unique_ptr<VectorIndex>(new IvfPqIndex(params));
    case IndexType::kHnsw:
      return std::unique_ptr<VectorIndex>(new HnswIndex(params));
    case IndexType::kSsdBucket:
      if (store == nullptr) {
        return Status::InvalidArgument("ssd_bucket index needs a store");
      }
      return std::unique_ptr<VectorIndex>(
          new SsdBucketIndex(params, store, ssd_path));
  }
  return Status::InvalidArgument("unknown index type");
}

Result<std::unique_ptr<VectorIndex>> BuildVectorIndex(
    const IndexParams& params, const float* data, int64_t n,
    ObjectStore* store, const std::string& ssd_path) {
  MANU_ASSIGN_OR_RETURN(std::unique_ptr<VectorIndex> index,
                        CreateVectorIndex(params, store, ssd_path));
  MANU_RETURN_NOT_OK(index->Build(data, n));
  return index;
}

Result<std::unique_ptr<VectorIndex>> DeserializeVectorIndex(
    std::string_view data, ObjectStore* store) {
  BinaryReader r(data);
  MANU_ASSIGN_OR_RETURN(IndexParams params, IndexParams::Deserialize(&r));
  switch (params.type) {
    case IndexType::kFlat: {
      MANU_ASSIGN_OR_RETURN(auto index,
                            FlatIndex::Deserialize(std::move(params), &r));
      return std::unique_ptr<VectorIndex>(std::move(index));
    }
    case IndexType::kIvfFlat:
    case IndexType::kIvfHnsw: {
      MANU_ASSIGN_OR_RETURN(auto index,
                            IvfFlatIndex::Deserialize(std::move(params), &r));
      return std::unique_ptr<VectorIndex>(std::move(index));
    }
    case IndexType::kRq: {
      MANU_ASSIGN_OR_RETURN(auto index,
                            RqIndex::Deserialize(std::move(params), &r));
      return std::unique_ptr<VectorIndex>(std::move(index));
    }
    case IndexType::kImi: {
      MANU_ASSIGN_OR_RETURN(auto index,
                            ImiIndex::Deserialize(std::move(params), &r));
      return std::unique_ptr<VectorIndex>(std::move(index));
    }
    case IndexType::kIvfSq: {
      MANU_ASSIGN_OR_RETURN(auto index,
                            IvfSqIndex::Deserialize(std::move(params), &r));
      return std::unique_ptr<VectorIndex>(std::move(index));
    }
    case IndexType::kSq8: {
      MANU_ASSIGN_OR_RETURN(auto index,
                            Sq8Index::Deserialize(std::move(params), &r));
      return std::unique_ptr<VectorIndex>(std::move(index));
    }
    case IndexType::kPq: {
      MANU_ASSIGN_OR_RETURN(auto index,
                            PqIndex::Deserialize(std::move(params), &r));
      return std::unique_ptr<VectorIndex>(std::move(index));
    }
    case IndexType::kIvfPq: {
      MANU_ASSIGN_OR_RETURN(auto index,
                            IvfPqIndex::Deserialize(std::move(params), &r));
      return std::unique_ptr<VectorIndex>(std::move(index));
    }
    case IndexType::kHnsw: {
      MANU_ASSIGN_OR_RETURN(auto index,
                            HnswIndex::Deserialize(std::move(params), &r));
      return std::unique_ptr<VectorIndex>(std::move(index));
    }
    case IndexType::kSsdBucket: {
      if (store == nullptr) {
        return Status::InvalidArgument("ssd_bucket index needs a store");
      }
      MANU_ASSIGN_OR_RETURN(
          auto index, SsdBucketIndex::Deserialize(std::move(params), &r,
                                                  store));
      return std::unique_ptr<VectorIndex>(std::move(index));
    }
  }
  return Status::InvalidArgument("unknown index type");
}

}  // namespace manu
