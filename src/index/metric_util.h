#ifndef MANU_INDEX_METRIC_UTIL_H_
#define MANU_INDEX_METRIC_UTIL_H_

#include "common/types.h"
#include "simd/distances.h"

namespace manu {

/// Canonical score (smaller is better) under `metric`; see Neighbor.
inline float MetricScore(const float* a, const float* b, int32_t dim,
                         MetricType metric) {
  switch (metric) {
    case MetricType::kL2:
      return simd::L2Sqr(a, b, dim);
    case MetricType::kInnerProduct:
      return -simd::InnerProduct(a, b, dim);
    case MetricType::kCosine:
      return -simd::CosineSimilarity(a, b, dim);
  }
  return 0;
}

/// Batch variant: out[i] = MetricScore(query, base + i*dim).
inline void MetricScoreBatch(const float* query, const float* base, size_t n,
                             size_t dim, MetricType metric, float* out) {
  switch (metric) {
    case MetricType::kL2:
      simd::L2SqrBatch(query, base, n, dim, out);
      return;
    case MetricType::kInnerProduct:
      simd::InnerProductBatch(query, base, n, dim, out);
      break;
    case MetricType::kCosine:
      simd::CosineBatch(query, base, n, dim, out);
      break;
  }
  for (size_t i = 0; i < n; ++i) out[i] = -out[i];
}

}  // namespace manu

#endif  // MANU_INDEX_METRIC_UTIL_H_
