#ifndef MANU_INDEX_IVF_FLAT_H_
#define MANU_INDEX_IVF_FLAT_H_

#include <memory>
#include <vector>

#include "index/vector_index.h"

namespace manu {

class HnswIndex;

/// Inverted file with raw vectors: k-means partitions rows into nlist
/// clusters; a query scans only the nprobe most promising clusters
/// (Section 3.5 "inverted indexes group vectors into clusters, and only
/// scan the most promising clusters for a query"). Also the paper's choice
/// of "light-weight temporary index" for full growing-segment slices.
///
/// The kIvfHnsw variant (Table 1) organizes the centroids themselves in an
/// HNSW graph, making coarse probing sub-linear in nlist — the win shows
/// once nlist reaches the tens of thousands.
class IvfFlatIndex : public VectorIndex {
 public:
  explicit IvfFlatIndex(IndexParams params) : params_(std::move(params)) {
    if (params_.type != IndexType::kIvfHnsw) {
      params_.type = IndexType::kIvfFlat;
    }
  }
  ~IvfFlatIndex() override;

  const IndexParams& params() const override { return params_; }
  int64_t Size() const override { return size_; }

  Status Build(const float* data, int64_t n) override;
  Result<std::vector<Neighbor>> Search(
      const float* query, const SearchParams& params) const override;
  uint64_t MemoryBytes() const override;

  void Serialize(BinaryWriter* w) const override;
  static Result<std::unique_ptr<IvfFlatIndex>> Deserialize(IndexParams params,
                                                           BinaryReader* r);

  int32_t num_lists() const { return static_cast<int32_t>(ids_.size()); }

 private:
  friend class IvfSqIndex;  // Shares the coarse-probe helper.

  /// Indexes of the `nprobe` closest centroids to `query`, best first.
  std::vector<int32_t> ProbeLists(const float* query, int32_t nprobe) const;

  IndexParams params_;
  int64_t size_ = 0;
  std::vector<float> centroids_;             ///< nlist * dim.
  std::vector<std::vector<int64_t>> ids_;    ///< Row ids per list.
  std::vector<std::vector<float>> vectors_;  ///< Raw vectors per list.
  /// Present only for kIvfHnsw: graph over the centroids (ids are list
  /// indices).
  std::unique_ptr<HnswIndex> centroid_hnsw_;
};

}  // namespace manu

#endif  // MANU_INDEX_IVF_FLAT_H_
