#ifndef MANU_INDEX_FLAT_INDEX_H_
#define MANU_INDEX_FLAT_INDEX_H_

#include <vector>

#include "index/vector_index.h"

namespace manu {

/// Brute-force index: stores raw vectors and scans them with the batched
/// kernels. Exact (recall 1.0); also the search path for growing-segment
/// data that has no temporary index yet (Section 3.6).
class FlatIndex : public VectorIndex {
 public:
  explicit FlatIndex(IndexParams params) : params_(std::move(params)) {
    params_.type = IndexType::kFlat;
  }

  const IndexParams& params() const override { return params_; }
  int64_t Size() const override {
    return params_.dim > 0
               ? static_cast<int64_t>(data_.size()) / params_.dim
               : 0;
  }

  Status Build(const float* data, int64_t n) override;
  /// Incremental append (growing segments).
  Status Add(const float* data, int64_t n);

  Result<std::vector<Neighbor>> Search(
      const float* query, const SearchParams& params) const override;

  uint64_t MemoryBytes() const override {
    return data_.size() * sizeof(float);
  }

  void Serialize(BinaryWriter* w) const override;
  static Result<std::unique_ptr<FlatIndex>> Deserialize(IndexParams params,
                                                        BinaryReader* r);

  /// Raw vector access (used when reconstructing results or re-ranking).
  const float* Row(int64_t i) const { return data_.data() + i * params_.dim; }

 private:
  IndexParams params_;
  std::vector<float> data_;
};

}  // namespace manu

#endif  // MANU_INDEX_FLAT_INDEX_H_
