#include "index/scalar_index.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace manu {

Status ScalarSortedIndex::Build(const FieldColumn& column) {
  std::vector<double> raw;
  switch (column.type) {
    case DataType::kInt64:
      raw.assign(column.i64.begin(), column.i64.end());
      break;
    case DataType::kFloat:
      raw.assign(column.f32.begin(), column.f32.end());
      break;
    case DataType::kDouble:
      raw = column.f64;
      break;
    default:
      return Status::InvalidArgument(
          "scalar index requires a numeric column");
  }
  num_rows_ = static_cast<int64_t>(raw.size());
  std::vector<int64_t> order(raw.size());
  std::iota(order.begin(), order.end(), 0);
  // NaN-aware comparator: a plain `raw[a] < raw[b]` violates strict weak
  // ordering when NaNs are present (UB in std::sort). NaNs sort last so the
  // finite prefix stays binary-searchable.
  std::sort(order.begin(), order.end(), [&](int64_t a, int64_t b) {
    const bool na = std::isnan(raw[a]);
    const bool nb = std::isnan(raw[b]);
    if (na || nb) return !na && nb;
    return raw[a] < raw[b];
  });
  values_.resize(raw.size());
  rows_.resize(raw.size());
  for (size_t i = 0; i < order.size(); ++i) {
    values_[i] = raw[order[i]];
    rows_[i] = order[i];
  }
  finite_ = num_rows_;
  while (finite_ > 0 && std::isnan(values_[finite_ - 1])) --finite_;
  return Status::OK();
}

void ScalarSortedIndex::RangeQuery(double lo, double hi,
                                   ConcurrentBitset* out) const {
  if (std::isnan(lo) || std::isnan(hi)) return;  // NaN bounds match nothing.
  const auto finite_end = values_.begin() + finite_;
  auto begin = std::lower_bound(values_.begin(), finite_end, lo);
  auto end = std::upper_bound(values_.begin(), finite_end, hi);
  for (auto it = begin; it != end; ++it) {
    out->Set(static_cast<size_t>(rows_[it - values_.begin()]));
  }
}

void ScalarSortedIndex::EqualsQuery(double value,
                                    ConcurrentBitset* out) const {
  RangeQuery(value, value, out);
}

int64_t ScalarSortedIndex::CountRange(double lo, double hi) const {
  if (std::isnan(lo) || std::isnan(hi)) return 0;
  const auto finite_end = values_.begin() + finite_;
  auto begin = std::lower_bound(values_.begin(), finite_end, lo);
  auto end = std::upper_bound(values_.begin(), finite_end, hi);
  return end - begin;
}

void ScalarSortedIndex::Serialize(BinaryWriter* w) const {
  w->PutI64(num_rows_);
  w->PutVector(values_);
  w->PutVector(rows_);
}

Result<ScalarSortedIndex> ScalarSortedIndex::Deserialize(BinaryReader* r) {
  ScalarSortedIndex index;
  MANU_ASSIGN_OR_RETURN(index.num_rows_, r->GetI64());
  MANU_ASSIGN_OR_RETURN(index.values_, r->GetVector<double>());
  MANU_ASSIGN_OR_RETURN(index.rows_, r->GetVector<int64_t>());
  // finite_ is derivable from the payload (NaNs sort last), so the wire
  // format stays unchanged.
  index.finite_ = static_cast<int64_t>(index.values_.size());
  while (index.finite_ > 0 && std::isnan(index.values_[index.finite_ - 1])) {
    --index.finite_;
  }
  return index;
}

Status LabelIndex::Build(const FieldColumn& column) {
  if (column.type != DataType::kString) {
    return Status::InvalidArgument("label index requires a string column");
  }
  num_rows_ = column.NumRows();
  labels_ = column.str;
  std::sort(labels_.begin(), labels_.end());
  labels_.erase(std::unique(labels_.begin(), labels_.end()), labels_.end());
  postings_.assign(labels_.size(), {});
  for (int64_t row = 0; row < num_rows_; ++row) {
    const auto it =
        std::lower_bound(labels_.begin(), labels_.end(), column.str[row]);
    postings_[it - labels_.begin()].push_back(row);
  }
  return Status::OK();
}

void LabelIndex::EqualsQuery(const std::string& label,
                             ConcurrentBitset* out) const {
  const auto it = std::lower_bound(labels_.begin(), labels_.end(), label);
  if (it == labels_.end() || *it != label) return;
  for (int64_t row : postings_[it - labels_.begin()]) {
    out->Set(static_cast<size_t>(row));
  }
}

int64_t LabelIndex::PostingSize(const std::string& label) const {
  const auto it = std::lower_bound(labels_.begin(), labels_.end(), label);
  if (it == labels_.end() || *it != label) return 0;
  return static_cast<int64_t>(postings_[it - labels_.begin()].size());
}

void LabelIndex::Serialize(BinaryWriter* w) const {
  w->PutI64(num_rows_);
  w->PutU32(static_cast<uint32_t>(labels_.size()));
  for (size_t i = 0; i < labels_.size(); ++i) {
    w->PutString(labels_[i]);
    w->PutVector(postings_[i]);
  }
}

Result<LabelIndex> LabelIndex::Deserialize(BinaryReader* r) {
  LabelIndex index;
  MANU_ASSIGN_OR_RETURN(index.num_rows_, r->GetI64());
  MANU_ASSIGN_OR_RETURN(uint32_t n, r->GetU32());
  index.labels_.resize(n);
  index.postings_.resize(n);
  for (uint32_t i = 0; i < n; ++i) {
    MANU_ASSIGN_OR_RETURN(index.labels_[i], r->GetString());
    MANU_ASSIGN_OR_RETURN(index.postings_[i], r->GetVector<int64_t>());
  }
  return index;
}

}  // namespace manu
