#ifndef MANU_INDEX_FILTER_INDEX_H_
#define MANU_INDEX_FILTER_INDEX_H_

#include <map>
#include <string>
#include <vector>

#include "common/bitset.h"
#include "common/dataset.h"
#include "common/result.h"
#include "index/scalar_index.h"

namespace manu {

/// Compressed row-id set in the roaring style: rows are partitioned into
/// 65536-row chunks; a chunk with <= 4096 members stores them as a sorted
/// uint16 array, a denser chunk as a 1024-word bitmap. This is the posting
/// representation of the per-segment attribute indexes (Section 3.6): small
/// enough to persist beside the vector index artifact, cheap to OR into the
/// `allowed` mask at query time.
class BitmapPostings {
 public:
  /// Builds from a sorted, duplicate-free ascending row list.
  static BitmapPostings FromSortedRows(const std::vector<int64_t>& rows);

  int64_t cardinality() const { return cardinality_; }

  /// Sets every member row in `out`.
  void AddTo(ConcurrentBitset* out) const;
  /// Appends every member row, ascending, to `out`.
  void AppendRows(std::vector<int64_t>* out) const;
  bool Contains(int64_t row) const;

  uint64_t MemoryBytes() const;

  void Serialize(BinaryWriter* w) const;
  static Result<BitmapPostings> Deserialize(BinaryReader* r);

 private:
  static constexpr size_t kChunkBits = 16;
  static constexpr size_t kChunkRows = 1ull << kChunkBits;  // 65536
  static constexpr size_t kArrayMax = 4096;  ///< Array->bitmap switch point.
  static constexpr size_t kWordsPerChunk = kChunkRows / 64;

  struct Container {
    uint32_t key = 0;   ///< Chunk index: rows in [key<<16, (key+1)<<16).
    bool dense = false;
    std::vector<uint16_t> values;  ///< Sorted low-16-bits (array form).
    std::vector<uint64_t> words;   ///< kWordsPerChunk words (bitmap form).

    int64_t Cardinality() const;
  };

  std::vector<Container> containers_;  ///< Sorted by key.
  int64_t cardinality_ = 0;
};

/// String-label equality index backed by compressed bitmap postings — the
/// sealed-segment counterpart of LabelIndex, with O(1) posting-length
/// selectivity for the filter planner.
class LabelBitmapIndex {
 public:
  Status Build(const FieldColumn& column);

  int64_t NumRows() const { return num_rows_; }

  /// Sets bits of rows whose label equals `label`.
  void EqualsQuery(const std::string& label, ConcurrentBitset* out) const;
  /// Posting cardinality for `label` (0 when absent) — the planner's
  /// selectivity estimate without materializing a bitset.
  int64_t PostingSize(const std::string& label) const;

  uint64_t MemoryBytes() const;

  void Serialize(BinaryWriter* w) const;
  static Result<LabelBitmapIndex> Deserialize(BinaryReader* r);

 private:
  int64_t num_rows_ = 0;
  std::vector<std::string> labels_;        ///< Sorted unique labels.
  std::vector<BitmapPostings> postings_;   ///< Parallel to labels_.
};

/// Per-sealed-segment attribute-index package: one ScalarSortedIndex per
/// numeric field and one LabelBitmapIndex per string field. Index nodes
/// build it beside the vector index, persist it with the segment's index
/// artifacts, and query nodes load it on LoadSealedSegment so the filter
/// planner can estimate selectivity and materialize allowed masks without
/// scanning the raw columns.
class FilterIndex {
 public:
  /// Indexes every non-vector user column of the batch. Bool columns are
  /// skipped (no predicate reaches them through the expr grammar).
  Status Build(const EntityBatch& batch);

  int64_t NumRows() const { return num_rows_; }

  const ScalarSortedIndex* scalar(FieldId field) const;
  const LabelBitmapIndex* label(FieldId field) const;

  uint64_t MemoryBytes() const;

  void Serialize(BinaryWriter* w) const;
  static Result<FilterIndex> Deserialize(BinaryReader* r);

 private:
  int64_t num_rows_ = 0;
  std::map<FieldId, ScalarSortedIndex> scalars_;
  std::map<FieldId, LabelBitmapIndex> labels_;
};

}  // namespace manu

#endif  // MANU_INDEX_FILTER_INDEX_H_
