#ifndef MANU_INDEX_SCALAR_INDEX_H_
#define MANU_INDEX_SCALAR_INDEX_H_

#include <string>
#include <vector>

#include "common/bitset.h"
#include "common/dataset.h"
#include "common/result.h"

namespace manu {

/// Sorted-list index on a numeric attribute field (Table 1: "B-Tree, Sorted
/// List"). Values are widened to double; range/equality predicates resolve
/// to a row bitset that vector indexes consume as the `allowed` mask
/// (attribute filtering, Section 3.6).
///
/// Edge semantics: NaN rows are sorted after every finite/infinite value and
/// never match a range or equality query (IEEE comparison semantics — the
/// expr layer's `!=` handles them by complementing an equality bitset).
/// ±inf bounds and ±inf stored values behave as ordinary ordered values;
/// empty columns yield empty results everywhere.
class ScalarSortedIndex {
 public:
  /// Builds from an int64/float/double column.
  Status Build(const FieldColumn& column);

  int64_t NumRows() const { return num_rows_; }
  /// Rows holding a non-NaN value (the range-searchable prefix).
  int64_t NumFinite() const { return finite_; }

  /// Sets bits of rows whose value lies in [lo, hi] (inclusive). NaN bounds
  /// match nothing; NaN rows are never set.
  void RangeQuery(double lo, double hi, ConcurrentBitset* out) const;
  void EqualsQuery(double value, ConcurrentBitset* out) const;

  /// Number of rows in [lo, hi] without materializing the bitset; the
  /// cost-based filter planner uses this selectivity estimate.
  int64_t CountRange(double lo, double hi) const;

  void Serialize(BinaryWriter* w) const;
  static Result<ScalarSortedIndex> Deserialize(BinaryReader* r);

 private:
  int64_t num_rows_ = 0;
  int64_t finite_ = 0;          ///< Non-NaN prefix length of values_.
  std::vector<double> values_;  ///< Sorted, NaNs last.
  std::vector<int64_t> rows_;   ///< rows_[i] holds values_[i].
};

/// String-label equality index (hash of sorted unique labels -> row lists).
class LabelIndex {
 public:
  Status Build(const FieldColumn& column);

  int64_t NumRows() const { return num_rows_; }

  /// Sets bits of rows whose label equals `label`.
  void EqualsQuery(const std::string& label, ConcurrentBitset* out) const;
  /// Posting length for `label` (0 when absent) — an O(log labels)
  /// selectivity estimate for the filter planner.
  int64_t PostingSize(const std::string& label) const;

  void Serialize(BinaryWriter* w) const;
  static Result<LabelIndex> Deserialize(BinaryReader* r);

 private:
  int64_t num_rows_ = 0;
  std::vector<std::string> labels_;            ///< Sorted unique labels.
  std::vector<std::vector<int64_t>> postings_; ///< Rows per label.
};

}  // namespace manu

#endif  // MANU_INDEX_SCALAR_INDEX_H_
