#ifndef MANU_INDEX_RQ_H_
#define MANU_INDEX_RQ_H_

#include <vector>

#include "index/vector_index.h"

namespace manu {

/// Residual (additive) quantizer (Table 1's "RQ"): `m` stages of 256-entry
/// full-dimension codebooks, each trained on the residuals of the previous
/// stages. A vector reconstructs as the sum of its stage centroids.
///
/// ADC scoring: q·x̂ = sum_s q·c_s is m table lookups; for L2,
/// ||q - x̂||² = ||q||² - 2·q·x̂ + ||x̂||², with ||x̂||² stored per code at
/// encode time. Cosine reduces to IP via build/query normalization.
class ResidualQuantizer {
 public:
  static constexpr int32_t kCodebookSize = 256;

  Status Train(const float* data, int64_t n, int32_t dim, int32_t m,
               int32_t iters, uint64_t seed);

  int32_t dim() const { return dim_; }
  int32_t m() const { return m_; }
  bool trained() const { return m_ > 0; }

  /// Encodes greedily stage by stage; also returns ||x̂||².
  void Encode(const float* vec, uint8_t* code, float* recon_norm_sqr) const;
  void Decode(const uint8_t* code, float* vec) const;

  /// Fills `table` (m * 256) with q·c partial dot products.
  void BuildIpTable(const float* query, float* table) const;

  float IpWithTable(const float* table, const uint8_t* code) const {
    float acc = 0;
    for (int32_t s = 0; s < m_; ++s) {
      acc += table[s * kCodebookSize + code[s]];
    }
    return acc;
  }

  void Serialize(BinaryWriter* w) const;
  static Result<ResidualQuantizer> Deserialize(BinaryReader* r);

 private:
  int32_t dim_ = 0;
  int32_t m_ = 0;
  /// m * 256 * dim floats; stage s codebook at offset s*256*dim.
  std::vector<float> codebooks_;
};

/// Flat RQ index: m bytes + one stored reconstruction norm per row.
class RqIndex : public VectorIndex {
 public:
  explicit RqIndex(IndexParams params) : params_(std::move(params)) {
    params_.type = IndexType::kRq;
  }

  const IndexParams& params() const override { return params_; }
  int64_t Size() const override { return size_; }

  Status Build(const float* data, int64_t n) override;
  Result<std::vector<Neighbor>> Search(
      const float* query, const SearchParams& params) const override;
  uint64_t MemoryBytes() const override;

  void Serialize(BinaryWriter* w) const override;
  static Result<std::unique_ptr<RqIndex>> Deserialize(IndexParams params,
                                                      BinaryReader* r);

 private:
  IndexParams params_;
  int64_t size_ = 0;
  ResidualQuantizer rq_;
  std::vector<uint8_t> codes_;       ///< size_ * m.
  std::vector<float> recon_norms_;   ///< ||x̂||² per row (L2 scoring).
};

}  // namespace manu

#endif  // MANU_INDEX_RQ_H_
