#include "index/flat_index.h"

#include "index/metric_util.h"

namespace manu {

Status FlatIndex::Build(const float* data, int64_t n) {
  data_.clear();
  return Add(data, n);
}

Status FlatIndex::Add(const float* data, int64_t n) {
  if (params_.dim <= 0) return Status::InvalidArgument("flat: dim not set");
  data_.insert(data_.end(), data, data + n * params_.dim);
  return Status::OK();
}

Result<std::vector<Neighbor>> FlatIndex::Search(
    const float* query, const SearchParams& sp) const {
  const int64_t n = Size();
  TopKHeap heap(sp.k);
  // Score in blocks so the scores buffer stays cache-resident.
  constexpr int64_t kBlock = 1024;
  float scores[kBlock];
  for (int64_t begin = 0; begin < n; begin += kBlock) {
    const int64_t len = std::min(kBlock, n - begin);
    MetricScoreBatch(query, data_.data() + begin * params_.dim,
                     static_cast<size_t>(len), params_.dim, params_.metric,
                     scores);
    for (int64_t i = 0; i < len; ++i) {
      const int64_t row = begin + i;
      if (!PassesFilters(row, sp)) continue;
      heap.Push(row, scores[i]);
    }
  }
  return heap.TakeSorted();
}

void FlatIndex::Serialize(BinaryWriter* w) const {
  params_.Serialize(w);
  w->PutVector(data_);
}

Result<std::unique_ptr<FlatIndex>> FlatIndex::Deserialize(IndexParams params,
                                                          BinaryReader* r) {
  auto index = std::make_unique<FlatIndex>(std::move(params));
  MANU_ASSIGN_OR_RETURN(index->data_, r->GetVector<float>());
  return index;
}

}  // namespace manu
