#ifndef MANU_INDEX_SQ_H_
#define MANU_INDEX_SQ_H_

#include <vector>

#include "index/vector_index.h"

namespace manu {

/// Per-dimension 8-bit scalar quantizer (Section 3.5: "scalar quantization
/// maps each dimension of vector to a single byte"). Codes reconstruct as
/// vmin[d] + code * (vmax[d]-vmin[d]) / 255.
class ScalarQuantizer {
 public:
  void Train(const float* data, int64_t n, int32_t dim);

  int32_t dim() const { return dim_; }
  bool trained() const { return dim_ > 0; }

  void Encode(const float* vec, uint8_t* code) const;
  void Decode(const uint8_t* code, float* vec) const;

  /// Canonical score between a raw query and one code, decoding on the fly
  /// (no materialized float buffer).
  float Score(const float* query, const uint8_t* code,
              MetricType metric) const;

  void Serialize(BinaryWriter* w) const;
  static Result<ScalarQuantizer> Deserialize(BinaryReader* r);

 private:
  int32_t dim_ = 0;
  std::vector<float> vmin_;
  std::vector<float> vscale_;  ///< (vmax - vmin) / 255, 0 for flat dims.
};

/// Flat SQ8 index: one 8-bit code per dimension, full scan over codes.
/// 4x memory reduction vs Flat with near-identical recall on typical data.
class Sq8Index : public VectorIndex {
 public:
  explicit Sq8Index(IndexParams params) : params_(std::move(params)) {
    params_.type = IndexType::kSq8;
  }

  const IndexParams& params() const override { return params_; }
  int64_t Size() const override {
    return params_.dim > 0
               ? static_cast<int64_t>(codes_.size()) / params_.dim
               : 0;
  }

  Status Build(const float* data, int64_t n) override;
  Result<std::vector<Neighbor>> Search(
      const float* query, const SearchParams& params) const override;
  uint64_t MemoryBytes() const override {
    return codes_.size() + vmin_bytes();
  }

  void Serialize(BinaryWriter* w) const override;
  static Result<std::unique_ptr<Sq8Index>> Deserialize(IndexParams params,
                                                       BinaryReader* r);

 private:
  uint64_t vmin_bytes() const {
    return static_cast<uint64_t>(params_.dim) * 2 * sizeof(float);
  }

  IndexParams params_;
  ScalarQuantizer quantizer_;
  std::vector<uint8_t> codes_;
};

/// IVF over SQ8 codes: coarse k-means clusters, 8-bit codes inside lists.
class IvfSqIndex : public VectorIndex {
 public:
  explicit IvfSqIndex(IndexParams params) : params_(std::move(params)) {
    params_.type = IndexType::kIvfSq;
  }

  const IndexParams& params() const override { return params_; }
  int64_t Size() const override { return size_; }

  Status Build(const float* data, int64_t n) override;
  Result<std::vector<Neighbor>> Search(
      const float* query, const SearchParams& params) const override;
  uint64_t MemoryBytes() const override;

  void Serialize(BinaryWriter* w) const override;
  static Result<std::unique_ptr<IvfSqIndex>> Deserialize(IndexParams params,
                                                         BinaryReader* r);

 private:
  IndexParams params_;
  int64_t size_ = 0;
  ScalarQuantizer quantizer_;
  std::vector<float> centroids_;
  std::vector<std::vector<int64_t>> ids_;
  std::vector<std::vector<uint8_t>> codes_;  ///< Per list, rows * dim bytes.
};

}  // namespace manu

#endif  // MANU_INDEX_SQ_H_
