#include "index/ivf_flat.h"

#include <algorithm>

#include "index/hnsw.h"
#include "index/kmeans.h"
#include "index/metric_util.h"

namespace manu {

namespace {
IndexParams CentroidHnswParams(const IndexParams& params) {
  IndexParams cp;
  cp.type = IndexType::kHnsw;
  cp.metric = MetricType::kL2;  // Coarse probing is geometric.
  cp.dim = params.dim;
  cp.hnsw_m = 16;
  cp.hnsw_ef_construction = 100;
  cp.seed = params.seed;
  return cp;
}
}  // namespace

IvfFlatIndex::~IvfFlatIndex() = default;

Status IvfFlatIndex::Build(const float* data, int64_t n) {
  if (params_.dim <= 0) return Status::InvalidArgument("ivf: dim not set");
  if (n == 0) return Status::InvalidArgument("ivf: empty build input");

  KMeansOptions opts;
  opts.k = params_.nlist;
  opts.max_iters = params_.train_iters;
  opts.seed = params_.seed;
  // Faiss-style training budget: Lloyd runs on a bounded sample (64 points
  // per centroid, floor 20k) so build cost stays linear in nlist, not rows.
  opts.max_train_rows =
      std::max<int64_t>(static_cast<int64_t>(64) * opts.k, 20000);
  KMeansResult km = KMeans(data, n, params_.dim, opts);

  centroids_ = std::move(km.centroids);
  const int32_t nlist = km.k;
  ids_.assign(nlist, {});
  vectors_.assign(nlist, {});
  for (int64_t i = 0; i < n; ++i) {
    const int32_t list = km.assignments[i];
    ids_[list].push_back(i);
    const float* v = data + i * params_.dim;
    vectors_[list].insert(vectors_[list].end(), v, v + params_.dim);
  }
  size_ = n;
  if (params_.type == IndexType::kIvfHnsw) {
    centroid_hnsw_ = std::make_unique<HnswIndex>(CentroidHnswParams(params_));
    MANU_RETURN_NOT_OK(
        centroid_hnsw_->Build(centroids_.data(), nlist));
  }
  return Status::OK();
}

std::vector<int32_t> IvfFlatIndex::ProbeLists(const float* query,
                                              int32_t nprobe) const {
  const int32_t nlist = static_cast<int32_t>(ids_.size());
  nprobe = std::min(nprobe, nlist);
  if (centroid_hnsw_ != nullptr) {
    // Sub-linear coarse probe through the centroid graph.
    SearchParams sp;
    sp.k = static_cast<size_t>(nprobe);
    sp.ef_search = std::max(64, nprobe * 2);
    auto hits = centroid_hnsw_->Search(query, sp);
    if (hits.ok()) {
      std::vector<int32_t> out;
      out.reserve(hits.value().size());
      for (const Neighbor& n : hits.value()) {
        out.push_back(static_cast<int32_t>(n.id));
      }
      return out;
    }
    // Fall through to the exact scan on error.
  }
  // Coarse assignment is always L2 (see KMeans doc).
  std::vector<std::pair<float, int32_t>> scored(nlist);
  for (int32_t c = 0; c < nlist; ++c) {
    scored[c] = {simd::L2Sqr(query,
                             centroids_.data() +
                                 static_cast<size_t>(c) * params_.dim,
                             params_.dim),
                 c};
  }
  std::partial_sort(scored.begin(), scored.begin() + nprobe, scored.end());
  std::vector<int32_t> out(nprobe);
  for (int32_t i = 0; i < nprobe; ++i) out[i] = scored[i].second;
  return out;
}

Result<std::vector<Neighbor>> IvfFlatIndex::Search(
    const float* query, const SearchParams& sp) const {
  if (size_ == 0) return std::vector<Neighbor>{};
  TopKHeap heap(sp.k);
  std::vector<float> scores;
  if (sp.filtered_traversal && sp.allowed != nullptr) {
    // Allowed-mask list pruning: gather the passing rows of each probed
    // list first (bitset tests only) and compute distances for just those;
    // lists with no passing rows are skipped entirely. The planner inflates
    // nprobe so ~nprobe lists still contribute candidates.
    std::vector<size_t> allowed_offsets;
    for (int32_t list : ProbeLists(query, sp.nprobe)) {
      const auto& ids = ids_[list];
      if (ids.empty()) continue;
      allowed_offsets.clear();
      for (size_t i = 0; i < ids.size(); ++i) {
        if (PassesFilters(ids[i], sp)) allowed_offsets.push_back(i);
      }
      if (allowed_offsets.empty()) continue;
      const float* vecs = vectors_[list].data();
      for (size_t i : allowed_offsets) {
        heap.Push(ids[i],
                  MetricScore(query, vecs + i * params_.dim, params_.dim,
                              params_.metric));
      }
    }
    return heap.TakeSorted();
  }
  for (int32_t list : ProbeLists(query, sp.nprobe)) {
    const auto& ids = ids_[list];
    if (ids.empty()) continue;
    scores.resize(ids.size());
    MetricScoreBatch(query, vectors_[list].data(), ids.size(), params_.dim,
                     params_.metric, scores.data());
    for (size_t i = 0; i < ids.size(); ++i) {
      if (!PassesFilters(ids[i], sp)) continue;
      heap.Push(ids[i], scores[i]);
    }
  }
  return heap.TakeSorted();
}

uint64_t IvfFlatIndex::MemoryBytes() const {
  uint64_t bytes = centroids_.size() * sizeof(float);
  for (const auto& ids : ids_) bytes += ids.size() * sizeof(int64_t);
  for (const auto& v : vectors_) bytes += v.size() * sizeof(float);
  if (centroid_hnsw_ != nullptr) bytes += centroid_hnsw_->MemoryBytes();
  return bytes;
}

void IvfFlatIndex::Serialize(BinaryWriter* w) const {
  params_.Serialize(w);
  w->PutI64(size_);
  w->PutVector(centroids_);
  w->PutU32(static_cast<uint32_t>(ids_.size()));
  for (size_t i = 0; i < ids_.size(); ++i) {
    w->PutVector(ids_[i]);
    w->PutVector(vectors_[i]);
  }
  w->PutBool(centroid_hnsw_ != nullptr);
  if (centroid_hnsw_ != nullptr) centroid_hnsw_->Serialize(w);
}

Result<std::unique_ptr<IvfFlatIndex>> IvfFlatIndex::Deserialize(
    IndexParams params, BinaryReader* r) {
  auto index = std::make_unique<IvfFlatIndex>(std::move(params));
  MANU_ASSIGN_OR_RETURN(index->size_, r->GetI64());
  MANU_ASSIGN_OR_RETURN(index->centroids_, r->GetVector<float>());
  MANU_ASSIGN_OR_RETURN(uint32_t nlist, r->GetU32());
  index->ids_.resize(nlist);
  index->vectors_.resize(nlist);
  for (uint32_t i = 0; i < nlist; ++i) {
    MANU_ASSIGN_OR_RETURN(index->ids_[i], r->GetVector<int64_t>());
    MANU_ASSIGN_OR_RETURN(index->vectors_[i], r->GetVector<float>());
  }
  MANU_ASSIGN_OR_RETURN(bool has_hnsw, r->GetBool());
  if (has_hnsw) {
    MANU_ASSIGN_OR_RETURN(IndexParams cp, IndexParams::Deserialize(r));
    MANU_ASSIGN_OR_RETURN(index->centroid_hnsw_,
                          HnswIndex::Deserialize(std::move(cp), r));
  }
  return index;
}

}  // namespace manu
