#include "index/sq.h"

#include <algorithm>
#include <cmath>

#include "index/kmeans.h"
#include "index/metric_util.h"

namespace manu {

// ---------------------------------------------------------------------------
// ScalarQuantizer
// ---------------------------------------------------------------------------

void ScalarQuantizer::Train(const float* data, int64_t n, int32_t dim) {
  dim_ = dim;
  vmin_.assign(dim, std::numeric_limits<float>::max());
  std::vector<float> vmax(dim, std::numeric_limits<float>::lowest());
  for (int64_t i = 0; i < n; ++i) {
    const float* v = data + i * dim;
    for (int32_t d = 0; d < dim; ++d) {
      vmin_[d] = std::min(vmin_[d], v[d]);
      vmax[d] = std::max(vmax[d], v[d]);
    }
  }
  vscale_.resize(dim);
  for (int32_t d = 0; d < dim; ++d) {
    vscale_[d] = (vmax[d] - vmin_[d]) / 255.0f;
  }
}

void ScalarQuantizer::Encode(const float* vec, uint8_t* code) const {
  for (int32_t d = 0; d < dim_; ++d) {
    if (vscale_[d] == 0) {
      code[d] = 0;
      continue;
    }
    const float q = (vec[d] - vmin_[d]) / vscale_[d];
    code[d] = static_cast<uint8_t>(std::clamp(q + 0.5f, 0.0f, 255.0f));
  }
}

void ScalarQuantizer::Decode(const uint8_t* code, float* vec) const {
  for (int32_t d = 0; d < dim_; ++d) {
    vec[d] = vmin_[d] + static_cast<float>(code[d]) * vscale_[d];
  }
}

float ScalarQuantizer::Score(const float* query, const uint8_t* code,
                             MetricType metric) const {
  switch (metric) {
    case MetricType::kL2: {
      float acc = 0;
      for (int32_t d = 0; d < dim_; ++d) {
        const float diff =
            query[d] - (vmin_[d] + static_cast<float>(code[d]) * vscale_[d]);
        acc += diff * diff;
      }
      return acc;
    }
    case MetricType::kInnerProduct: {
      float acc = 0;
      for (int32_t d = 0; d < dim_; ++d) {
        acc += query[d] * (vmin_[d] + static_cast<float>(code[d]) * vscale_[d]);
      }
      return -acc;
    }
    case MetricType::kCosine: {
      float ip = 0, qn = 0, cn = 0;
      for (int32_t d = 0; d < dim_; ++d) {
        const float c = vmin_[d] + static_cast<float>(code[d]) * vscale_[d];
        ip += query[d] * c;
        qn += query[d] * query[d];
        cn += c * c;
      }
      if (qn == 0 || cn == 0) return 0;
      return -ip / std::sqrt(qn * cn);
    }
  }
  return 0;
}

void ScalarQuantizer::Serialize(BinaryWriter* w) const {
  w->PutI32(dim_);
  w->PutVector(vmin_);
  w->PutVector(vscale_);
}

Result<ScalarQuantizer> ScalarQuantizer::Deserialize(BinaryReader* r) {
  ScalarQuantizer q;
  MANU_ASSIGN_OR_RETURN(q.dim_, r->GetI32());
  MANU_ASSIGN_OR_RETURN(q.vmin_, r->GetVector<float>());
  MANU_ASSIGN_OR_RETURN(q.vscale_, r->GetVector<float>());
  return q;
}

// ---------------------------------------------------------------------------
// Sq8Index
// ---------------------------------------------------------------------------

Status Sq8Index::Build(const float* data, int64_t n) {
  if (params_.dim <= 0) return Status::InvalidArgument("sq8: dim not set");
  quantizer_.Train(data, n, params_.dim);
  codes_.resize(static_cast<size_t>(n) * params_.dim);
  for (int64_t i = 0; i < n; ++i) {
    quantizer_.Encode(data + i * params_.dim,
                      codes_.data() + i * params_.dim);
  }
  return Status::OK();
}

Result<std::vector<Neighbor>> Sq8Index::Search(const float* query,
                                               const SearchParams& sp) const {
  TopKHeap heap(sp.k);
  const int64_t n = Size();
  for (int64_t i = 0; i < n; ++i) {
    if (!PassesFilters(i, sp)) continue;
    heap.Push(i, quantizer_.Score(query, codes_.data() + i * params_.dim,
                                  params_.metric));
  }
  return heap.TakeSorted();
}

void Sq8Index::Serialize(BinaryWriter* w) const {
  params_.Serialize(w);
  quantizer_.Serialize(w);
  w->PutVector(codes_);
}

Result<std::unique_ptr<Sq8Index>> Sq8Index::Deserialize(IndexParams params,
                                                        BinaryReader* r) {
  auto index = std::make_unique<Sq8Index>(std::move(params));
  MANU_ASSIGN_OR_RETURN(index->quantizer_, ScalarQuantizer::Deserialize(r));
  MANU_ASSIGN_OR_RETURN(index->codes_, r->GetVector<uint8_t>());
  return index;
}

// ---------------------------------------------------------------------------
// IvfSqIndex
// ---------------------------------------------------------------------------

Status IvfSqIndex::Build(const float* data, int64_t n) {
  if (params_.dim <= 0) return Status::InvalidArgument("ivf_sq: dim not set");
  if (n == 0) return Status::InvalidArgument("ivf_sq: empty build input");
  quantizer_.Train(data, n, params_.dim);

  KMeansOptions opts;
  opts.k = params_.nlist;
  opts.max_iters = params_.train_iters;
  opts.seed = params_.seed;
  // Faiss-style training budget: Lloyd runs on a bounded sample (64 points
  // per centroid, floor 20k) so build cost stays linear in nlist, not rows.
  opts.max_train_rows =
      std::max<int64_t>(static_cast<int64_t>(64) * opts.k, 20000);
  KMeansResult km = KMeans(data, n, params_.dim, opts);
  centroids_ = std::move(km.centroids);
  ids_.assign(km.k, {});
  codes_.assign(km.k, {});
  std::vector<uint8_t> code(params_.dim);
  for (int64_t i = 0; i < n; ++i) {
    const int32_t list = km.assignments[i];
    ids_[list].push_back(i);
    quantizer_.Encode(data + i * params_.dim, code.data());
    codes_[list].insert(codes_[list].end(), code.begin(), code.end());
  }
  size_ = n;
  return Status::OK();
}

Result<std::vector<Neighbor>> IvfSqIndex::Search(
    const float* query, const SearchParams& sp) const {
  if (size_ == 0) return std::vector<Neighbor>{};
  const int32_t nlist = static_cast<int32_t>(ids_.size());
  const int32_t nprobe = std::min(sp.nprobe, nlist);
  std::vector<std::pair<float, int32_t>> scored(nlist);
  for (int32_t c = 0; c < nlist; ++c) {
    scored[c] = {simd::L2Sqr(query,
                             centroids_.data() +
                                 static_cast<size_t>(c) * params_.dim,
                             params_.dim),
                 c};
  }
  std::partial_sort(scored.begin(), scored.begin() + nprobe, scored.end());

  TopKHeap heap(sp.k);
  for (int32_t p = 0; p < nprobe; ++p) {
    const int32_t list = scored[p].second;
    const auto& ids = ids_[list];
    const uint8_t* codes = codes_[list].data();
    for (size_t i = 0; i < ids.size(); ++i) {
      if (!PassesFilters(ids[i], sp)) continue;
      heap.Push(ids[i],
                quantizer_.Score(query, codes + i * params_.dim,
                                 params_.metric));
    }
  }
  return heap.TakeSorted();
}

uint64_t IvfSqIndex::MemoryBytes() const {
  uint64_t bytes = centroids_.size() * sizeof(float) +
                   static_cast<uint64_t>(params_.dim) * 2 * sizeof(float);
  for (const auto& ids : ids_) bytes += ids.size() * sizeof(int64_t);
  for (const auto& c : codes_) bytes += c.size();
  return bytes;
}

void IvfSqIndex::Serialize(BinaryWriter* w) const {
  params_.Serialize(w);
  w->PutI64(size_);
  quantizer_.Serialize(w);
  w->PutVector(centroids_);
  w->PutU32(static_cast<uint32_t>(ids_.size()));
  for (size_t i = 0; i < ids_.size(); ++i) {
    w->PutVector(ids_[i]);
    w->PutVector(codes_[i]);
  }
}

Result<std::unique_ptr<IvfSqIndex>> IvfSqIndex::Deserialize(
    IndexParams params, BinaryReader* r) {
  auto index = std::make_unique<IvfSqIndex>(std::move(params));
  MANU_ASSIGN_OR_RETURN(index->size_, r->GetI64());
  MANU_ASSIGN_OR_RETURN(index->quantizer_, ScalarQuantizer::Deserialize(r));
  MANU_ASSIGN_OR_RETURN(index->centroids_, r->GetVector<float>());
  MANU_ASSIGN_OR_RETURN(uint32_t nlist, r->GetU32());
  index->ids_.resize(nlist);
  index->codes_.resize(nlist);
  for (uint32_t i = 0; i < nlist; ++i) {
    MANU_ASSIGN_OR_RETURN(index->ids_[i], r->GetVector<int64_t>());
    MANU_ASSIGN_OR_RETURN(index->codes_[i], r->GetVector<uint8_t>());
  }
  return index;
}

}  // namespace manu
