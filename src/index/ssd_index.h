#ifndef MANU_INDEX_SSD_INDEX_H_
#define MANU_INDEX_SSD_INDEX_H_

#include <memory>
#include <string>
#include <vector>

#include "index/hnsw.h"
#include "index/sq.h"
#include "index/vector_index.h"
#include "storage/object_store.h"

namespace manu {

/// The SSD-resident bucket index of Section 4.4 (the design that won track 2
/// of the NeurIPS'21 big-ann challenge; cf. SPANN):
///
///  * hierarchical k-means packs vectors into buckets sized to fit one (or a
///    few) 4 KB SSD blocks — reading less than 4 KB costs the same as 4 KB,
///    so buckets are 4 KB-aligned in one large object;
///  * bucket payloads are scalar-quantized (8-bit) to cut bytes fetched;
///  * clustering runs `ssd_replicas` times with different seeds, assigning
///    each vector once per run (multi-assignment replication, the LSH-style
///    fix for border vectors), and search dedups ids;
///  * only the bucket *centroids* stay in DRAM, organized in an HNSW graph.
///
/// Search: probe the DRAM centroid graph for the nprobe most promising
/// buckets, ranged-read those buckets, decode and score.
class SsdBucketIndex : public VectorIndex {
 public:
  /// `store`+`object_path` locate the bucket file; using a LocalObjectStore
  /// exercises real file IO, a LatencyObjectStore models device latency.
  SsdBucketIndex(IndexParams params, ObjectStore* store,
                 std::string object_path);

  const IndexParams& params() const override { return params_; }
  int64_t Size() const override { return size_; }

  Status Build(const float* data, int64_t n) override;
  Result<std::vector<Neighbor>> Search(
      const float* query, const SearchParams& params) const override;

  /// DRAM-resident bytes only (centroid graph + directory); the bucket file
  /// intentionally does not count, that is the point of the design.
  uint64_t MemoryBytes() const override;

  /// Total bytes of the SSD-resident bucket object.
  uint64_t SsdBytes() const { return ssd_bytes_; }
  int64_t NumBuckets() const { return static_cast<int64_t>(buckets_.size()); }

  /// Serializes the DRAM part (the bucket object stays in the store).
  void Serialize(BinaryWriter* w) const override;
  static Result<std::unique_ptr<SsdBucketIndex>> Deserialize(
      IndexParams params, BinaryReader* r, ObjectStore* store);

 private:
  struct BucketMeta {
    uint64_t offset = 0;  ///< 4 KB-aligned offset in the object.
    uint32_t bytes = 0;   ///< Padded length (multiple of 4 KB).
    uint32_t count = 0;   ///< Rows stored.
  };

  /// Rows per bucket so that count * (8 + dim) <= ssd_bucket_bytes.
  int64_t RowsPerBucket() const;

  IndexParams params_;
  ObjectStore* store_;
  std::string object_path_;

  int64_t size_ = 0;
  uint64_t ssd_bytes_ = 0;
  ScalarQuantizer quantizer_;
  std::vector<BucketMeta> buckets_;
  std::unique_ptr<HnswIndex> centroid_index_;  ///< Ids are bucket indices.
};

}  // namespace manu

#endif  // MANU_INDEX_SSD_INDEX_H_
