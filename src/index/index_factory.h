#ifndef MANU_INDEX_INDEX_FACTORY_H_
#define MANU_INDEX_INDEX_FACTORY_H_

#include <memory>
#include <string>

#include "index/vector_index.h"
#include "storage/object_store.h"

namespace manu {

/// Creates an empty index of the type named in `params`. For kSsdBucket,
/// `store` must be non-null and `ssd_path` names the bucket object; other
/// types ignore both.
Result<std::unique_ptr<VectorIndex>> CreateVectorIndex(
    const IndexParams& params, ObjectStore* store = nullptr,
    const std::string& ssd_path = "");

/// Builds an index over `n` rows in one call.
Result<std::unique_ptr<VectorIndex>> BuildVectorIndex(
    const IndexParams& params, const float* data, int64_t n,
    ObjectStore* store = nullptr, const std::string& ssd_path = "");

/// Reconstructs an index from bytes produced by VectorIndex::Serialize.
Result<std::unique_ptr<VectorIndex>> DeserializeVectorIndex(
    std::string_view data, ObjectStore* store = nullptr);

}  // namespace manu

#endif  // MANU_INDEX_INDEX_FACTORY_H_
