#ifndef MANU_INDEX_VECTOR_INDEX_H_
#define MANU_INDEX_VECTOR_INDEX_H_

#include <memory>
#include <string>
#include <vector>

#include "common/bitset.h"
#include "common/result.h"
#include "common/serde.h"
#include "common/topk.h"
#include "common/types.h"

namespace manu {

/// Build-time parameters for every index family (Table 1). Unused knobs are
/// ignored by families that don't need them, which keeps one parameter
/// surface for the factory, the auto-tuner and serialized metadata.
struct IndexParams {
  IndexType type = IndexType::kFlat;
  MetricType metric = MetricType::kL2;
  int32_t dim = 0;

  // Inverted-index family.
  int32_t nlist = 128;        ///< Number of coarse clusters.
  int32_t train_iters = 10;   ///< Lloyd iterations for coarse quantizer.

  // Product quantization.
  int32_t pq_m = 8;           ///< Subquantizers; dim % pq_m == 0.
  int32_t pq_nbits = 8;       ///< Bits per code (only 8 supported).

  // HNSW.
  int32_t hnsw_m = 16;             ///< Max neighbors per node per layer.
  int32_t hnsw_ef_construction = 200;

  // SSD bucket index (Section 4.4).
  int32_t ssd_bucket_bytes = 4096;  ///< Target bucket payload size.
  int32_t ssd_replicas = 2;         ///< Multi-assignment replication factor.

  uint64_t seed = 42;

  void Serialize(BinaryWriter* w) const;
  static Result<IndexParams> Deserialize(BinaryReader* r);
  std::string ToString() const;
  bool operator==(const IndexParams&) const = default;
};

/// Query-time parameters. `deleted` and `allowed` are optional row-offset
/// bitsets: a row is a candidate iff (deleted == null || !deleted[row]) &&
/// (allowed == null || allowed[row]). `deleted` carries tombstones,
/// `allowed` carries attribute-filter results (Section 3.6).
struct SearchParams {
  size_t k = 10;
  int32_t nprobe = 8;        ///< Coarse clusters probed (IVF family).
  int32_t ef_search = 64;    ///< HNSW candidate-queue size.
  const ConcurrentBitset* deleted = nullptr;
  const ConcurrentBitset* allowed = nullptr;
  /// MVCC visibility bound: only rows with offset < visible_rows are
  /// candidates. Segments append rows in LSN order, so "data visible at
  /// timestamp T" is always a row prefix. Default: everything visible.
  int64_t visible_rows = INT64_MAX;
  /// Filter-aware traversal (the planner's kTraversal strategy): HNSW runs
  /// a visiting-filter beam with adaptive ef inflation instead of post-hoc
  /// result filtering, IVF prunes probed lists to allowed rows before
  /// computing distances. Off = the legacy post-filtering behavior.
  bool filtered_traversal = false;
  /// Cap on the adaptive ef multiplier during filtered HNSW traversal (the
  /// beam keeps doubling until k passing results are found or ef reaches
  /// ef_search * traversal_ef_cap). Only read when filtered_traversal.
  double traversal_ef_cap = 16.0;
};

/// Base interface for all vector indexes. An index covers the rows of one
/// segment; Search returns row offsets (0-based) with canonical scores
/// (smaller is better; see Neighbor). Implementations are immutable after
/// Build() — Manu rebuilds per segment rather than updating in place — with
/// the exception of HNSW, which also supports incremental Add for the
/// growing-segment temporary-index path.
class VectorIndex {
 public:
  virtual ~VectorIndex() = default;

  virtual const IndexParams& params() const = 0;
  IndexType type() const { return params().type; }
  MetricType metric() const { return params().metric; }
  int32_t dim() const { return params().dim; }

  /// Number of indexed rows.
  virtual int64_t Size() const = 0;

  /// Trains (if needed) and indexes `n` rows of row-major data.
  virtual Status Build(const float* data, int64_t n) = 0;

  virtual Result<std::vector<Neighbor>> Search(
      const float* query, const SearchParams& params) const = 0;

  /// Approximate resident memory, for load balancing and the memory-cost
  /// trade-off benches.
  virtual uint64_t MemoryBytes() const = 0;

  /// Serializes the full index (including params) for object storage.
  virtual void Serialize(BinaryWriter* w) const = 0;
};

/// Returns true when candidate `row` passes the visibility/deleted/allowed
/// masks.
inline bool PassesFilters(int64_t row, const SearchParams& p) {
  if (row >= p.visible_rows) return false;
  if (p.deleted != nullptr && p.deleted->Test(static_cast<size_t>(row))) {
    return false;
  }
  if (p.allowed != nullptr && !p.allowed->Test(static_cast<size_t>(row))) {
    return false;
  }
  return true;
}

}  // namespace manu

#endif  // MANU_INDEX_VECTOR_INDEX_H_
