#include "index/rq.h"

#include <algorithm>
#include <cmath>

#include "index/kmeans.h"
#include "index/metric_util.h"

namespace manu {

namespace {
std::vector<float> NormalizedCopy(const float* data, int64_t n, int32_t dim) {
  std::vector<float> out(data, data + n * dim);
  for (int64_t i = 0; i < n; ++i) {
    float* v = out.data() + i * dim;
    const float norm = std::sqrt(simd::L2NormSqr(v, dim));
    if (norm > 0) {
      for (int32_t d = 0; d < dim; ++d) v[d] /= norm;
    }
  }
  return out;
}
}  // namespace

Status ResidualQuantizer::Train(const float* data, int64_t n, int32_t dim,
                                int32_t m, int32_t iters, uint64_t seed) {
  if (m <= 0) return Status::InvalidArgument("rq: m must be positive");
  dim_ = dim;
  m_ = m;
  codebooks_.assign(static_cast<size_t>(m_) * kCodebookSize * dim_, 0.0f);

  // Residuals start as the data itself; each stage quantizes what the
  // previous stages left behind.
  std::vector<float> residuals(data, data + n * dim);
  for (int32_t s = 0; s < m_; ++s) {
    KMeansOptions opts;
    opts.k = kCodebookSize;
    opts.max_iters = iters;
    opts.seed = seed + s;
    // Full-dimension codebooks are expensive to train; bound the Lloyd
    // sample like the IVF family does.
    opts.max_train_rows = 20000;
    KMeansResult km = KMeans(residuals.data(), n, dim_, opts);
    float* book =
        codebooks_.data() + static_cast<size_t>(s) * kCodebookSize * dim_;
    for (int32_t c = 0; c < kCodebookSize; ++c) {
      const float* src =
          km.centroids.data() + static_cast<size_t>(c % km.k) * dim_;
      std::copy(src, src + dim_, book + static_cast<size_t>(c) * dim_);
    }
    for (int64_t i = 0; i < n; ++i) {
      const float* c = book + static_cast<size_t>(km.assignments[i]) * dim_;
      float* r = residuals.data() + i * dim_;
      for (int32_t d = 0; d < dim_; ++d) r[d] -= c[d];
    }
  }
  return Status::OK();
}

void ResidualQuantizer::Encode(const float* vec, uint8_t* code,
                               float* recon_norm_sqr) const {
  std::vector<float> residual(vec, vec + dim_);
  std::vector<float> recon(dim_, 0.0f);
  for (int32_t s = 0; s < m_; ++s) {
    const float* book =
        codebooks_.data() + static_cast<size_t>(s) * kCodebookSize * dim_;
    float best = std::numeric_limits<float>::max();
    int32_t best_c = 0;
    for (int32_t c = 0; c < kCodebookSize; ++c) {
      const float d = simd::L2Sqr(residual.data(),
                                  book + static_cast<size_t>(c) * dim_, dim_);
      if (d < best) {
        best = d;
        best_c = c;
      }
    }
    code[s] = static_cast<uint8_t>(best_c);
    const float* c = book + static_cast<size_t>(best_c) * dim_;
    for (int32_t d = 0; d < dim_; ++d) {
      residual[d] -= c[d];
      recon[d] += c[d];
    }
  }
  if (recon_norm_sqr != nullptr) {
    *recon_norm_sqr = simd::L2NormSqr(recon.data(), dim_);
  }
}

void ResidualQuantizer::Decode(const uint8_t* code, float* vec) const {
  std::fill(vec, vec + dim_, 0.0f);
  for (int32_t s = 0; s < m_; ++s) {
    const float* c = codebooks_.data() +
                     (static_cast<size_t>(s) * kCodebookSize + code[s]) * dim_;
    for (int32_t d = 0; d < dim_; ++d) vec[d] += c[d];
  }
}

void ResidualQuantizer::BuildIpTable(const float* query, float* table) const {
  for (int32_t s = 0; s < m_; ++s) {
    const float* book =
        codebooks_.data() + static_cast<size_t>(s) * kCodebookSize * dim_;
    float* row = table + static_cast<size_t>(s) * kCodebookSize;
    for (int32_t c = 0; c < kCodebookSize; ++c) {
      row[c] = simd::InnerProduct(query, book + static_cast<size_t>(c) * dim_,
                                  dim_);
    }
  }
}

void ResidualQuantizer::Serialize(BinaryWriter* w) const {
  w->PutI32(dim_);
  w->PutI32(m_);
  w->PutVector(codebooks_);
}

Result<ResidualQuantizer> ResidualQuantizer::Deserialize(BinaryReader* r) {
  ResidualQuantizer rq;
  MANU_ASSIGN_OR_RETURN(rq.dim_, r->GetI32());
  MANU_ASSIGN_OR_RETURN(rq.m_, r->GetI32());
  MANU_ASSIGN_OR_RETURN(rq.codebooks_, r->GetVector<float>());
  return rq;
}

Status RqIndex::Build(const float* data, int64_t n) {
  if (params_.dim <= 0) return Status::InvalidArgument("rq: dim not set");
  std::vector<float> normalized;
  if (params_.metric == MetricType::kCosine) {
    normalized = NormalizedCopy(data, n, params_.dim);
    data = normalized.data();
  }
  // Reuse pq_m as the stage count; cap training cost on big segments.
  const int64_t train_n = std::min<int64_t>(n, 50000);
  MANU_RETURN_NOT_OK(rq_.Train(data, train_n, params_.dim, params_.pq_m,
                               params_.train_iters, params_.seed));
  codes_.resize(static_cast<size_t>(n) * params_.pq_m);
  recon_norms_.resize(n);
  for (int64_t i = 0; i < n; ++i) {
    rq_.Encode(data + i * params_.dim, codes_.data() + i * params_.pq_m,
               &recon_norms_[i]);
  }
  size_ = n;
  return Status::OK();
}

Result<std::vector<Neighbor>> RqIndex::Search(const float* query,
                                              const SearchParams& sp) const {
  std::vector<float> qnorm;
  if (params_.metric == MetricType::kCosine) {
    qnorm = NormalizedCopy(query, 1, params_.dim);
    query = qnorm.data();
  }
  std::vector<float> table(
      static_cast<size_t>(rq_.m()) * ResidualQuantizer::kCodebookSize);
  rq_.BuildIpTable(query, table.data());

  // Canonical scores: L2 -> -2*ip + ||x̂||² (the constant ||q||² does not
  // change ordering); IP/cosine -> -ip.
  const bool l2 = params_.metric == MetricType::kL2;
  TopKHeap heap(sp.k);
  for (int64_t i = 0; i < size_; ++i) {
    if (!PassesFilters(i, sp)) continue;
    const float ip =
        rq_.IpWithTable(table.data(), codes_.data() + i * params_.pq_m);
    heap.Push(i, l2 ? recon_norms_[i] - 2.0f * ip : -ip);
  }
  return heap.TakeSorted();
}

uint64_t RqIndex::MemoryBytes() const {
  return codes_.size() + recon_norms_.size() * sizeof(float) +
         static_cast<uint64_t>(rq_.m()) * ResidualQuantizer::kCodebookSize *
             rq_.dim() * sizeof(float);
}

void RqIndex::Serialize(BinaryWriter* w) const {
  params_.Serialize(w);
  w->PutI64(size_);
  rq_.Serialize(w);
  w->PutVector(codes_);
  w->PutVector(recon_norms_);
}

Result<std::unique_ptr<RqIndex>> RqIndex::Deserialize(IndexParams params,
                                                      BinaryReader* r) {
  auto index = std::make_unique<RqIndex>(std::move(params));
  MANU_ASSIGN_OR_RETURN(index->size_, r->GetI64());
  MANU_ASSIGN_OR_RETURN(index->rq_, ResidualQuantizer::Deserialize(r));
  MANU_ASSIGN_OR_RETURN(index->codes_, r->GetVector<uint8_t>());
  MANU_ASSIGN_OR_RETURN(index->recon_norms_, r->GetVector<float>());
  return index;
}

}  // namespace manu
