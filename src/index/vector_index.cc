#include "index/vector_index.h"

#include <sstream>

namespace manu {

void IndexParams::Serialize(BinaryWriter* w) const {
  w->PutU8(static_cast<uint8_t>(type));
  w->PutU8(static_cast<uint8_t>(metric));
  w->PutI32(dim);
  w->PutI32(nlist);
  w->PutI32(train_iters);
  w->PutI32(pq_m);
  w->PutI32(pq_nbits);
  w->PutI32(hnsw_m);
  w->PutI32(hnsw_ef_construction);
  w->PutI32(ssd_bucket_bytes);
  w->PutI32(ssd_replicas);
  w->PutU64(seed);
}

Result<IndexParams> IndexParams::Deserialize(BinaryReader* r) {
  IndexParams p;
  MANU_ASSIGN_OR_RETURN(uint8_t type, r->GetU8());
  p.type = static_cast<IndexType>(type);
  MANU_ASSIGN_OR_RETURN(uint8_t metric, r->GetU8());
  p.metric = static_cast<MetricType>(metric);
  MANU_ASSIGN_OR_RETURN(p.dim, r->GetI32());
  MANU_ASSIGN_OR_RETURN(p.nlist, r->GetI32());
  MANU_ASSIGN_OR_RETURN(p.train_iters, r->GetI32());
  MANU_ASSIGN_OR_RETURN(p.pq_m, r->GetI32());
  MANU_ASSIGN_OR_RETURN(p.pq_nbits, r->GetI32());
  MANU_ASSIGN_OR_RETURN(p.hnsw_m, r->GetI32());
  MANU_ASSIGN_OR_RETURN(p.hnsw_ef_construction, r->GetI32());
  MANU_ASSIGN_OR_RETURN(p.ssd_bucket_bytes, r->GetI32());
  MANU_ASSIGN_OR_RETURN(p.ssd_replicas, r->GetI32());
  MANU_ASSIGN_OR_RETURN(p.seed, r->GetU64());
  return p;
}

std::string IndexParams::ToString() const {
  std::ostringstream out;
  out << manu::ToString(type) << "(metric=" << manu::ToString(metric)
      << ", dim=" << dim;
  switch (type) {
    case IndexType::kIvfFlat:
    case IndexType::kIvfHnsw:
    case IndexType::kIvfSq:
    case IndexType::kImi:
      out << ", nlist=" << nlist;
      break;
    case IndexType::kRq:
      out << ", stages=" << pq_m;
      break;
    case IndexType::kIvfPq:
      out << ", nlist=" << nlist << ", m=" << pq_m;
      break;
    case IndexType::kPq:
      out << ", m=" << pq_m;
      break;
    case IndexType::kHnsw:
      out << ", M=" << hnsw_m << ", efC=" << hnsw_ef_construction;
      break;
    case IndexType::kSsdBucket:
      out << ", bucket=" << ssd_bucket_bytes << "B, r=" << ssd_replicas;
      break;
    default:
      break;
  }
  out << ")";
  return out.str();
}

}  // namespace manu
