#ifndef MANU_INDEX_IMI_H_
#define MANU_INDEX_IMI_H_

#include <vector>

#include "index/vector_index.h"

namespace manu {

/// Inverted multi-index (Babenko & Lempitsky, ref [24] of the paper): the
/// vector space is split into two halves, each coarse-quantized with K
/// centroids, giving K*K cells — a much finer coarse partition than flat
/// IVF at the same training cost. A query ranks half-centroids
/// independently and visits cells in increasing combined distance using
/// the multi-sequence algorithm, scanning raw vectors in each visited cell
/// until enough candidates are seen.
///
/// `nlist` is interpreted as K (centroids per half); nprobe as the number
/// of candidate rows to scan, scaled by the average cell size.
class ImiIndex : public VectorIndex {
 public:
  explicit ImiIndex(IndexParams params) : params_(std::move(params)) {
    params_.type = IndexType::kImi;
  }

  const IndexParams& params() const override { return params_; }
  int64_t Size() const override { return size_; }

  Status Build(const float* data, int64_t n) override;
  Result<std::vector<Neighbor>> Search(
      const float* query, const SearchParams& params) const override;
  uint64_t MemoryBytes() const override;

  void Serialize(BinaryWriter* w) const override;
  static Result<std::unique_ptr<ImiIndex>> Deserialize(IndexParams params,
                                                       BinaryReader* r);

  int64_t NumNonEmptyCells() const;

 private:
  int32_t CellOf(int32_t c1, int32_t c2) const { return c1 * k_ + c2; }

  IndexParams params_;
  int64_t size_ = 0;
  int32_t k_ = 0;      ///< Centroids per half.
  int32_t half_ = 0;   ///< Dim of the first half (second = dim - half).
  std::vector<float> centroids1_;  ///< k * half_.
  std::vector<float> centroids2_;  ///< k * (dim - half_).
  /// Sparse cells: sorted by cell id, with ids/vectors per cell.
  std::vector<int32_t> cell_ids_;
  std::vector<std::vector<int64_t>> ids_;
  std::vector<std::vector<float>> vectors_;
};

}  // namespace manu

#endif  // MANU_INDEX_IMI_H_
