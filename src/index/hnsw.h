#ifndef MANU_INDEX_HNSW_H_
#define MANU_INDEX_HNSW_H_

#include <random>
#include <vector>

#include "index/vector_index.h"

namespace manu {

/// Hierarchical navigable small world graph (Malkov & Yashunin, ref [61] of
/// the paper): layered proximity graph, greedy descent through sparse upper
/// layers, beam search (ef) at layer 0. High recall and low latency at the
/// cost of memory — the trade-off Table 1 and Figure 8 exercise.
///
/// Supports incremental Add, which also serves the growing-segment slice
/// path. Build/Add are not thread-safe (callers serialize writes);
/// Search is const and safe to run concurrently with other Searches.
class HnswIndex : public VectorIndex {
 public:
  explicit HnswIndex(IndexParams params);

  const IndexParams& params() const override { return params_; }
  int64_t Size() const override { return static_cast<int64_t>(levels_.size()); }

  Status Build(const float* data, int64_t n) override;
  /// Appends `n` rows to the graph.
  Status Add(const float* data, int64_t n);

  Result<std::vector<Neighbor>> Search(
      const float* query, const SearchParams& params) const override;
  uint64_t MemoryBytes() const override;

  void Serialize(BinaryWriter* w) const override;
  static Result<std::unique_ptr<HnswIndex>> Deserialize(IndexParams params,
                                                        BinaryReader* r);

 private:
  /// Neighbor lists for one node, one vector per level [0..node_level].
  using NodeLinks = std::vector<std::vector<int32_t>>;

  float Dist(const float* a, const float* b) const;
  const float* Vec(int32_t node) const {
    return data_.data() + static_cast<size_t>(node) * params_.dim;
  }

  /// Greedy single-entry descent at `level`, returns the local minimum.
  int32_t GreedyStep(const float* query, int32_t entry, int32_t level) const;

  /// Beam search at one level: returns up to `ef` candidates, best first.
  std::vector<Neighbor> SearchLayer(const float* query, int32_t entry,
                                    int32_t ef, int32_t level,
                                    std::vector<uint8_t>* visited) const;

  /// Layer-0 beam search with a visiting filter: the beam routes through
  /// every node (masked nodes keep the graph connected) while only rows
  /// passing `sp`'s masks are collected, up to k results. Used by the
  /// planner's filtered-traversal strategy.
  std::vector<Neighbor> SearchLayerFiltered(
      const float* query, int32_t entry, int32_t ef, size_t k,
      const SearchParams& sp, std::vector<uint8_t>* visited) const;

  /// Keeps at most `max_m` links, preferring diverse neighbors (the HNSW
  /// select-neighbors heuristic).
  void SelectNeighbors(std::vector<Neighbor>* candidates, int32_t max_m) const;

  void InsertNode(int32_t node);

  int32_t MaxLinks(int32_t level) const {
    return level == 0 ? params_.hnsw_m * 2 : params_.hnsw_m;
  }

  IndexParams params_;
  double level_mult_ = 0;
  std::mt19937_64 rng_;

  std::vector<float> data_;
  std::vector<int32_t> levels_;
  std::vector<NodeLinks> links_;
  int32_t entry_point_ = -1;
  int32_t max_level_ = -1;
};

}  // namespace manu

#endif  // MANU_INDEX_HNSW_H_
