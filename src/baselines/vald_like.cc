#include <algorithm>
#include <queue>

#include "baselines/engine.h"
#include "index/kmeans.h"

namespace manu {

namespace {

/// Scalar (intentionally un-unrolled) distance loops: the NGT-style engine
/// does not ship Manu's blocked kernels.
float ScalarScore(const float* a, const float* b, int32_t dim,
                  MetricType metric) {
  if (metric == MetricType::kL2) {
    float acc = 0;
    for (int32_t d = 0; d < dim; ++d) {
      const float diff = a[d] - b[d];
      acc += diff * diff;
    }
    return acc;
  }
  float acc = 0;
  for (int32_t d = 0; d < dim; ++d) acc += a[d] * b[d];
  return -acc;
}

/// Vald-like engine: a flat kNN proximity graph (the ANNG of NGT). Build
/// approximates the kNN graph through cluster-restricted neighbor search;
/// query runs best-first beam search from a medoid-ish entry.
class ValdLikeEngine : public SearchEngine {
 public:
  explicit ValdLikeEngine(int32_t degree) : degree_(degree) {}

  std::string name() const override { return "vald_like/knn_graph"; }

  Status Build(const VectorDataset& data) override {
    dim_ = data.dim;
    metric_ = data.metric;
    data_ = data.data;
    const int64_t rows = data.NumRows();
    neighbors_.assign(rows, {});

    // Approximate kNN graph: cluster, then connect within cluster plus the
    // nearest sibling cluster (keeps build near O(n * cluster_size)).
    KMeansOptions opts;
    opts.k = static_cast<int32_t>(
        std::clamp<int64_t>(rows / 200, 1, 4096));
    opts.max_iters = 6;
    KMeansResult km = KMeans(data_.data(), rows, dim_, opts);
    std::vector<std::vector<int64_t>> clusters(km.k);
    for (int64_t i = 0; i < rows; ++i) {
      clusters[km.assignments[i]].push_back(i);
    }
    // Three nearest sibling clusters per cluster: neighbor candidates come
    // from the cluster and its siblings, so edges cross cluster borders.
    constexpr int32_t kSiblings = 4;
    std::vector<std::vector<int32_t>> siblings(km.k);
    for (int32_t c = 0; c < km.k; ++c) {
      std::vector<std::pair<float, int32_t>> ranked;
      ranked.reserve(km.k - 1);
      for (int32_t o = 0; o < km.k; ++o) {
        if (o == c) continue;
        ranked.emplace_back(
            ScalarScore(km.centroids.data() + static_cast<size_t>(c) * dim_,
                        km.centroids.data() + static_cast<size_t>(o) * dim_,
                        dim_, MetricType::kL2),
            o);
      }
      const size_t keep = std::min<size_t>(kSiblings, ranked.size());
      std::partial_sort(ranked.begin(), ranked.begin() + keep, ranked.end());
      for (size_t s = 0; s < keep; ++s) {
        siblings[c].push_back(ranked[s].second);
      }
    }
    for (int32_t c = 0; c < km.k; ++c) {
      std::vector<int64_t> pool = clusters[c];
      for (int32_t sib : siblings[c]) {
        pool.insert(pool.end(), clusters[sib].begin(), clusters[sib].end());
      }
      for (int64_t node : clusters[c]) {
        TopKHeap heap(degree_);
        const float* v = data_.data() + node * dim_;
        for (int64_t other : pool) {
          if (other == node) continue;
          heap.Push(other,
                    ScalarScore(v, data_.data() + other * dim_, dim_,
                                metric_));
        }
        for (const Neighbor& n : heap.TakeSorted()) {
          neighbors_[node].push_back(static_cast<int64_t>(n.id));
        }
      }
    }
    // ANNG graphs are undirected: add reverse edges so no node has zero
    // in-degree (a directed kNN graph leaves outliers unreachable).
    std::vector<std::vector<int64_t>> reverse(rows);
    for (int64_t node = 0; node < rows; ++node) {
      for (int64_t nb : neighbors_[node]) reverse[nb].push_back(node);
    }
    for (int64_t node = 0; node < rows; ++node) {
      for (int64_t back : reverse[node]) {
        if (std::find(neighbors_[node].begin(), neighbors_[node].end(),
                      back) == neighbors_[node].end()) {
          neighbors_[node].push_back(back);
        }
      }
    }
    // Entry exemplars: one per cluster. A flat kNN graph has no long-range
    // links, so the search seeds its beam from the exemplars of the
    // clusters closest to the query (NGT seeds from its tree similarly).
    centroids_ = std::move(km.centroids);
    exemplars_.clear();
    cluster_of_exemplar_.clear();
    for (int32_t c = 0; c < km.k; ++c) {
      if (clusters[c].empty()) continue;
      exemplars_.push_back(clusters[c][0]);
      cluster_of_exemplar_.push_back(c);
    }
    return Status::OK();
  }

  Result<std::vector<Neighbor>> Search(const float* query, size_t k,
                                       double knob) const override {
    const int64_t rows = static_cast<int64_t>(neighbors_.size());
    if (rows == 0) return std::vector<Neighbor>{};
    const int32_t beam =
        static_cast<int32_t>(k + knob * 400);  // NGT epsilon analogue.
    std::vector<uint8_t> visited(rows, 0);
    struct CloserFirst {
      bool operator()(const Neighbor& a, const Neighbor& b) const {
        return b < a;
      }
    };
    std::priority_queue<Neighbor, std::vector<Neighbor>, CloserFirst> cands;
    TopKHeap best(beam);
    // Seed from the exemplars of the clusters nearest to the query.
    std::vector<std::pair<float, size_t>> seed_rank(exemplars_.size());
    for (size_t e = 0; e < exemplars_.size(); ++e) {
      seed_rank[e] = {
          ScalarScore(query,
                      centroids_.data() +
                          static_cast<size_t>(cluster_of_exemplar_[e]) * dim_,
                      dim_, MetricType::kL2),
          e};
    }
    // Wider beams also seed from more clusters (NGT's epsilon expands both).
    const size_t num_seeds = std::min<size_t>(
        8 + static_cast<size_t>(knob * 24), seed_rank.size());
    std::partial_sort(seed_rank.begin(), seed_rank.begin() + num_seeds,
                      seed_rank.end());
    for (size_t s = 0; s < num_seeds; ++s) {
      const int64_t entry = exemplars_[seed_rank[s].second];
      if (visited[entry]) continue;
      visited[entry] = 1;
      const float d = ScalarScore(query, data_.data() + entry * dim_, dim_,
                                  metric_);
      cands.push({entry, d});
      best.Push(entry, d);
    }
    while (!cands.empty()) {
      const Neighbor cur = cands.top();
      if (best.Full() && cur.score > best.Worst()) break;
      cands.pop();
      for (int64_t nb : neighbors_[cur.id]) {
        if (visited[nb]) continue;
        visited[nb] = 1;
        const float d = ScalarScore(query, data_.data() + nb * dim_, dim_,
                                    metric_);
        if (!best.Full() || d < best.Worst()) {
          cands.push({nb, d});
          best.Push(nb, d);
        }
      }
    }
    std::vector<Neighbor> out = best.TakeSorted();
    if (out.size() > k) out.resize(k);
    return out;
  }

 private:
  int32_t degree_;
  int32_t dim_ = 0;
  MetricType metric_ = MetricType::kL2;
  std::vector<float> data_;
  std::vector<std::vector<int64_t>> neighbors_;
  std::vector<float> centroids_;
  std::vector<int64_t> exemplars_;
  std::vector<int32_t> cluster_of_exemplar_;
};

}  // namespace

std::unique_ptr<SearchEngine> MakeValdLikeEngine(int32_t graph_degree) {
  return std::make_unique<ValdLikeEngine>(graph_degree);
}

}  // namespace manu
