#ifndef MANU_BASELINES_MILVUS_LIKE_H_
#define MANU_BASELINES_MILVUS_LIKE_H_

#include <atomic>
#include <memory>
#include <shared_mutex>
#include <thread>
#include <vector>

#include "common/channel.h"
#include "common/topk.h"
#include "index/vector_index.h"

namespace manu {

/// The Figure 6 comparator: a Milvus-1.x-style deployment with "multiple
/// read nodes, but only one write node ... responsible for data insertion
/// and index construction, and thus write tasks and index building tasks
/// contend for resource".
///
/// The write node runs an ingest thread (rows become read-visible
/// immediately, as in Milvus) and a single index-build thread. When the
/// build thread falls behind the insert rate, sealed-but-unindexed
/// segments accumulate and every search brute-forces them — raw, with no
/// temporary indexes, which is what Manu's growing-segment slices fix.
/// "As a result, the index building latency is long and brute force search
/// is used for a large amount of data."
class MilvusLike {
 public:
  MilvusLike(IndexParams index_params, int64_t seal_rows);
  ~MilvusLike();

  /// Enqueues rows for the write node (non-blocking, like a client SDK).
  void Insert(std::vector<int64_t> pks, std::vector<float> vectors);

  /// Searches everything ingested so far: indexed segments through their
  /// index, unindexed segments and the growing buffer by brute force.
  Result<std::vector<Neighbor>> Search(const float* query, size_t k,
                                       int32_t nprobe) const;

  /// Rows currently not covered by any index (the brute-force backlog).
  int64_t UnindexedRows() const;
  /// Rows accepted into read-visible state.
  int64_t VisibleRows() const;
  /// Rows still waiting in the insert queue (ingest backlog).
  int64_t QueuedRows() const {
    return queued_rows_.load(std::memory_order_relaxed);
  }

  void Stop();

 private:
  struct Segment {
    std::vector<int64_t> pks;
    std::vector<float> vectors;
    std::unique_ptr<VectorIndex> index;  ///< Null until built.
  };
  struct InsertJob {
    std::vector<int64_t> pks;
    std::vector<float> vectors;
  };

  void IngestLoop();
  void BuildLoop();

  IndexParams index_params_;
  int64_t seal_rows_;

  Channel<InsertJob> queue_;
  Channel<std::shared_ptr<Segment>> pending_builds_;
  std::atomic<int64_t> queued_rows_{0};

  mutable std::shared_mutex mu_;
  std::vector<std::shared_ptr<Segment>> segments_;  ///< Sealed.
  std::shared_ptr<Segment> growing_;

  std::thread ingest_thread_;
  std::thread build_thread_;
};

}  // namespace manu

#endif  // MANU_BASELINES_MILVUS_LIKE_H_
