#include <functional>

#include "baselines/engine.h"
#include "index/hnsw.h"

namespace manu {

namespace {

/// Vespa-like engine: the same HNSW algorithm, but every distance goes
/// through a std::function metric plug (an engine with runtime-pluggable
/// metrics and re-ranking hooks pays virtual dispatch per candidate). The
/// graph itself is built with our HnswIndex — the comparison isolates the
/// kernel/abstraction difference, which is what the paper conjectures
/// ("better implementations with optimizations for CPU cache and SIMD").
class VespaLikeEngine : public SearchEngine {
 public:
  explicit VespaLikeEngine(int32_t m) : m_(m) {}

  std::string name() const override { return "vespa_like/hnsw"; }

  Status Build(const VectorDataset& data) override {
    dim_ = data.dim;
    data_ = data.data;
    IndexParams params;
    params.type = IndexType::kHnsw;
    params.metric = data.metric;
    params.dim = data.dim;
    params.hnsw_m = m_;
    params.hnsw_ef_construction = 150;
    index_ = std::make_unique<HnswIndex>(params);
    MANU_RETURN_NOT_OK(index_->Build(data.data.data(), data.NumRows()));

    // Scalar, indirect metric: one std::function call per distance.
    if (data.metric == MetricType::kL2) {
      metric_fn_ = [](const float* a, const float* b, int32_t dim) {
        float acc = 0;
        for (int32_t d = 0; d < dim; ++d) {
          const float diff = a[d] - b[d];
          acc += diff * diff;
        }
        return acc;
      };
    } else {
      metric_fn_ = [](const float* a, const float* b, int32_t dim) {
        float acc = 0;
        for (int32_t d = 0; d < dim; ++d) acc += a[d] * b[d];
        return -acc;
      };
    }
    return Status::OK();
  }

  Result<std::vector<Neighbor>> Search(const float* query, size_t k,
                                       double knob) const override {
    SearchParams sp;
    sp.k = k * 2;  // Over-fetch, then re-rank through the pluggable metric
                   // (Vespa re-scores results through its ranking pipeline).
    sp.ef_search = static_cast<int32_t>(k + knob * 400);
    MANU_ASSIGN_OR_RETURN(std::vector<Neighbor> hits,
                          index_->Search(query, sp));
    for (Neighbor& n : hits) {
      n.score = metric_fn_(query, data_.data() + n.id * dim_, dim_);
    }
    std::sort(hits.begin(), hits.end());
    if (hits.size() > k) hits.resize(k);
    return hits;
  }

 private:
  int32_t m_;
  int32_t dim_ = 0;
  std::vector<float> data_;
  std::unique_ptr<HnswIndex> index_;
  std::function<float(const float*, const float*, int32_t)> metric_fn_;
};

}  // namespace

std::unique_ptr<SearchEngine> MakeVespaLikeEngine(int32_t m) {
  return std::make_unique<VespaLikeEngine>(m);
}

}  // namespace manu
