#ifndef MANU_BASELINES_ENGINE_H_
#define MANU_BASELINES_ENGINE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/synthetic.h"
#include "common/topk.h"

namespace manu {

/// Single-node search engine interface for the Figure 8 recall-throughput
/// comparison. `knob` in [0, 1] sweeps each engine's accuracy/latency
/// trade-off (nprobe for inverted engines, beam width for graph engines):
/// knob 0 = fastest/least accurate, 1 = slowest/most accurate.
class SearchEngine {
 public:
  virtual ~SearchEngine() = default;
  virtual std::string name() const = 0;
  virtual Status Build(const VectorDataset& data) = 0;
  virtual Result<std::vector<Neighbor>> Search(const float* query, size_t k,
                                               double knob) const = 0;
};

/// Manu's single-node search path: the collection is split into segments,
/// each with its own index, searched with the segment-level/node-level
/// reduce and the blocked SIMD-friendly kernels (Section 5.2 attributes
/// Manu's edge to "better implementations with optimizations for CPU cache
/// and SIMD"). Default of one segment is faithful at bench scale: the
/// paper's 512 MB seal size means datasets up to ~1M 128-d vectors occupy
/// a single segment. With more than one segment, per-segment searches fan
/// out across `query_threads` (Section 6.4 intra-query parallelism;
/// 0 = serial scan).
std::unique_ptr<SearchEngine> MakeManuEngine(IndexType type,
                                             int32_t num_segments = 1,
                                             int32_t query_threads = 4);

/// ES-like baseline: disk-resident inverted index. Centroids live in
/// memory; every probed posting list is fetched from (simulated) disk with
/// per-read latency, which is why "ES is a disk-based solution" loses
/// throughput.
std::unique_ptr<SearchEngine> MakeEsLikeEngine(int64_t disk_read_micros = 80);

/// Vearch-like baseline: same in-memory IVF as Manu but behind the
/// "three-layer aggregation procedure (searcher-broker-blender)": partial
/// results are serialized, queued across two thread hops and re-merged at
/// each layer — the overhead the paper blames.
std::unique_ptr<SearchEngine> MakeVearchLikeEngine(int32_t num_searchers = 4);

/// Vald-like baseline (NGT family): a flat kNN-proximity-graph with
/// best-first beam search and plain scalar distance loops.
std::unique_ptr<SearchEngine> MakeValdLikeEngine(int32_t graph_degree = 24);

/// Vespa-like baseline: HNSW, but with virtually dispatched scalar distance
/// kernels (an engine that supports arbitrary pluggable metrics pays this
/// abstraction cost on every hop).
std::unique_ptr<SearchEngine> MakeVespaLikeEngine(int32_t m = 16);

}  // namespace manu

#endif  // MANU_BASELINES_ENGINE_H_
