#include "baselines/milvus_like.h"

#include <algorithm>

#include "common/logging.h"
#include "index/index_factory.h"
#include "index/metric_util.h"

namespace manu {

MilvusLike::MilvusLike(IndexParams index_params, int64_t seal_rows)
    : index_params_(index_params),
      seal_rows_(seal_rows),
      growing_(std::make_shared<Segment>()) {
  ingest_thread_ = std::thread([this] { IngestLoop(); });
  build_thread_ = std::thread([this] { BuildLoop(); });
}

MilvusLike::~MilvusLike() { Stop(); }

void MilvusLike::Stop() {
  queue_.Close();
  if (ingest_thread_.joinable()) ingest_thread_.join();
  pending_builds_.Close();
  if (build_thread_.joinable()) build_thread_.join();
}

void MilvusLike::Insert(std::vector<int64_t> pks,
                        std::vector<float> vectors) {
  queued_rows_.fetch_add(static_cast<int64_t>(pks.size()),
                         std::memory_order_relaxed);
  queue_.Push({std::move(pks), std::move(vectors)});
}

void MilvusLike::IngestLoop() {
  while (auto job = queue_.Pop()) {
    queued_rows_.fetch_sub(static_cast<int64_t>(job->pks.size()),
                           std::memory_order_relaxed);
    std::shared_ptr<Segment> to_index;
    {
      std::unique_lock lk(mu_);
      growing_->pks.insert(growing_->pks.end(), job->pks.begin(),
                           job->pks.end());
      growing_->vectors.insert(growing_->vectors.end(), job->vectors.begin(),
                               job->vectors.end());
      if (static_cast<int64_t>(growing_->pks.size()) >= seal_rows_) {
        segments_.push_back(growing_);
        to_index = growing_;
        growing_ = std::make_shared<Segment>();
      }
    }
    if (to_index != nullptr) pending_builds_.Push(std::move(to_index));
  }
}

void MilvusLike::BuildLoop() {
  // The write node's one build worker: when it falls behind the seal rate,
  // the unindexed backlog (and brute-force search cost) grows.
  while (auto segment = pending_builds_.Pop()) {
    auto built = BuildVectorIndex(
        index_params_, (*segment)->vectors.data(),
        static_cast<int64_t>((*segment)->pks.size()));
    if (built.ok()) {
      std::unique_lock lk(mu_);
      (*segment)->index = std::move(built).value();
    } else {
      MANU_LOG_WARN << "milvus_like index build failed: "
                    << built.status().ToString();
    }
  }
}

Result<std::vector<Neighbor>> MilvusLike::Search(const float* query, size_t k,
                                                 int32_t nprobe) const {
  std::shared_lock lk(mu_);
  TopKHeap heap(k);
  const int32_t dim = index_params_.dim;
  SearchParams sp;
  sp.k = k;
  sp.nprobe = nprobe;
  for (const auto& seg : segments_) {
    if (seg->index != nullptr) {
      MANU_ASSIGN_OR_RETURN(std::vector<Neighbor> hits,
                            seg->index->Search(query, sp));
      for (const Neighbor& n : hits) heap.Push(seg->pks[n.id], n.score);
    } else {
      for (size_t i = 0; i < seg->pks.size(); ++i) {
        heap.Push(seg->pks[i],
                  MetricScore(query, seg->vectors.data() + i * dim, dim,
                              index_params_.metric));
      }
    }
  }
  for (size_t i = 0; i < growing_->pks.size(); ++i) {
    heap.Push(growing_->pks[i],
              MetricScore(query, growing_->vectors.data() + i * dim, dim,
                          index_params_.metric));
  }
  return heap.TakeSorted();
}

int64_t MilvusLike::UnindexedRows() const {
  std::shared_lock lk(mu_);
  int64_t rows = static_cast<int64_t>(growing_->pks.size());
  for (const auto& seg : segments_) {
    if (seg->index == nullptr) rows += static_cast<int64_t>(seg->pks.size());
  }
  return rows;
}

int64_t MilvusLike::VisibleRows() const {
  std::shared_lock lk(mu_);
  int64_t rows = static_cast<int64_t>(growing_->pks.size());
  for (const auto& seg : segments_) {
    rows += static_cast<int64_t>(seg->pks.size());
  }
  return rows;
}

}  // namespace manu
