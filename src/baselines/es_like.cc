#include <algorithm>
#include <thread>

#include "baselines/engine.h"
#include "index/kmeans.h"
#include "index/metric_util.h"

namespace manu {

namespace {

/// Disk-resident inverted index. Posting lists (ids + raw vectors) live in
/// a simulated disk; only the centroids stay in memory. Each probed list
/// costs one disk read (fixed seek latency + bandwidth), the cost model
/// behind the paper's "ES is a disk-based solution" explanation for its low
/// throughput in Figure 8.
class EsLikeEngine : public SearchEngine {
 public:
  explicit EsLikeEngine(int64_t disk_read_micros)
      : disk_read_micros_(disk_read_micros) {}

  std::string name() const override { return "es_like/disk_ivf"; }

  Status Build(const VectorDataset& data) override {
    dim_ = data.dim;
    metric_ = data.metric;
    const int64_t rows = data.NumRows();
    KMeansOptions opts;
    opts.k = static_cast<int32_t>(std::max<int64_t>(32, rows / 256));
    opts.max_iters = 8;
    KMeansResult km = KMeans(data.data.data(), rows, dim_, opts);
    centroids_ = std::move(km.centroids);
    nlist_ = km.k;
    disk_ids_.assign(nlist_, {});
    disk_vectors_.assign(nlist_, {});
    for (int64_t i = 0; i < rows; ++i) {
      const int32_t list = km.assignments[i];
      disk_ids_[list].push_back(i);
      disk_vectors_[list].insert(disk_vectors_[list].end(), data.Row(i),
                                 data.Row(i) + dim_);
    }
    return Status::OK();
  }

  Result<std::vector<Neighbor>> Search(const float* query, size_t k,
                                       double knob) const override {
    const int32_t nprobe =
        std::min(nlist_, 1 + static_cast<int32_t>(knob * 63));
    std::vector<std::pair<float, int32_t>> scored(nlist_);
    for (int32_t c = 0; c < nlist_; ++c) {
      scored[c] = {simd::L2Sqr(query,
                               centroids_.data() +
                                   static_cast<size_t>(c) * dim_,
                               dim_),
                   c};
    }
    std::partial_sort(scored.begin(), scored.begin() + nprobe, scored.end());

    TopKHeap heap(k);
    for (int32_t p = 0; p < nprobe; ++p) {
      const int32_t list = scored[p].second;
      // Disk read: fixed seek plus ~1us per 4 KB of payload.
      const int64_t bytes =
          static_cast<int64_t>(disk_vectors_[list].size()) * sizeof(float);
      std::this_thread::sleep_for(std::chrono::microseconds(
          disk_read_micros_ + bytes / 4096));
      const auto& ids = disk_ids_[list];
      for (size_t i = 0; i < ids.size(); ++i) {
        heap.Push(ids[i],
                  MetricScore(query, disk_vectors_[list].data() + i * dim_,
                              dim_, metric_));
      }
    }
    return heap.TakeSorted();
  }

 private:
  int64_t disk_read_micros_;
  int32_t dim_ = 0;
  int32_t nlist_ = 0;
  MetricType metric_ = MetricType::kL2;
  std::vector<float> centroids_;
  std::vector<std::vector<int64_t>> disk_ids_;
  std::vector<std::vector<float>> disk_vectors_;
};

}  // namespace

std::unique_ptr<SearchEngine> MakeEsLikeEngine(int64_t disk_read_micros) {
  return std::make_unique<EsLikeEngine>(disk_read_micros);
}

}  // namespace manu
