#include <algorithm>

#include "baselines/engine.h"
#include "index/index_factory.h"

namespace manu {

namespace {

class ManuEngine : public SearchEngine {
 public:
  ManuEngine(IndexType type, int32_t num_segments)
      : type_(type), num_segments_(num_segments) {}

  std::string name() const override {
    return std::string("manu/") + ToString(type_);
  }

  Status Build(const VectorDataset& data) override {
    metric_ = data.metric;
    const int64_t rows = data.NumRows();
    const int64_t per_segment = (rows + num_segments_ - 1) / num_segments_;
    segments_.clear();
    bases_.clear();
    for (int64_t begin = 0; begin < rows; begin += per_segment) {
      const int64_t end = std::min(rows, begin + per_segment);
      IndexParams params;
      params.type = type_;
      params.metric = data.metric;
      params.dim = data.dim;
      params.nlist = static_cast<int32_t>(
          std::max<int64_t>(16, (end - begin) / 256));
      params.hnsw_m = 16;
      params.hnsw_ef_construction = 150;
      MANU_ASSIGN_OR_RETURN(
          std::unique_ptr<VectorIndex> index,
          BuildVectorIndex(params, data.Row(begin), end - begin));
      segments_.push_back(std::move(index));
      bases_.push_back(begin);
    }
    return Status::OK();
  }

  Result<std::vector<Neighbor>> Search(const float* query, size_t k,
                                       double knob) const override {
    SearchParams sp;
    sp.k = k;
    sp.nprobe = 1 + static_cast<int32_t>(knob * 63);
    sp.ef_search = static_cast<int32_t>(k + knob * 400);
    std::vector<std::vector<Neighbor>> lists;
    lists.reserve(segments_.size());
    for (size_t s = 0; s < segments_.size(); ++s) {
      MANU_ASSIGN_OR_RETURN(std::vector<Neighbor> hits,
                            segments_[s]->Search(query, sp));
      for (Neighbor& n : hits) n.id += bases_[s];  // Segment-local -> global.
      lists.push_back(std::move(hits));
    }
    return MergeTopK(lists, k, /*dedup_ids=*/false);
  }

 private:
  IndexType type_;
  int32_t num_segments_;
  MetricType metric_ = MetricType::kL2;
  std::vector<std::unique_ptr<VectorIndex>> segments_;
  std::vector<int64_t> bases_;
};

}  // namespace

std::unique_ptr<SearchEngine> MakeManuEngine(IndexType type,
                                             int32_t num_segments) {
  return std::make_unique<ManuEngine>(type, num_segments);
}

}  // namespace manu
