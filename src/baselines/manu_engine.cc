#include <algorithm>
#include <memory>

#include "baselines/engine.h"
#include "common/threadpool.h"
#include "index/index_factory.h"

namespace manu {

namespace {

class ManuEngine : public SearchEngine {
 public:
  ManuEngine(IndexType type, int32_t num_segments, int32_t query_threads)
      : type_(type), num_segments_(num_segments) {
    if (query_threads > 0 && num_segments > 1) {
      pool_ = std::make_unique<ThreadPool>(
          static_cast<size_t>(query_threads));
    }
  }

  std::string name() const override {
    return std::string("manu/") + ToString(type_);
  }

  Status Build(const VectorDataset& data) override {
    metric_ = data.metric;
    const int64_t rows = data.NumRows();
    const int64_t per_segment = (rows + num_segments_ - 1) / num_segments_;
    segments_.clear();
    bases_.clear();
    for (int64_t begin = 0; begin < rows; begin += per_segment) {
      const int64_t end = std::min(rows, begin + per_segment);
      IndexParams params;
      params.type = type_;
      params.metric = data.metric;
      params.dim = data.dim;
      params.nlist = static_cast<int32_t>(
          std::max<int64_t>(16, (end - begin) / 256));
      params.hnsw_m = 16;
      params.hnsw_ef_construction = 150;
      MANU_ASSIGN_OR_RETURN(
          std::unique_ptr<VectorIndex> index,
          BuildVectorIndex(params, data.Row(begin), end - begin));
      segments_.push_back(std::move(index));
      bases_.push_back(begin);
    }
    return Status::OK();
  }

  Result<std::vector<Neighbor>> Search(const float* query, size_t k,
                                       double knob) const override {
    SearchParams sp;
    sp.k = k;
    sp.nprobe = 1 + static_cast<int32_t>(knob * 63);
    sp.ef_search = static_cast<int32_t>(k + knob * 400);
    // Fixed result slots + order-independent reduce: identical output
    // whether the fan-out runs serially or across the pool.
    std::vector<std::vector<Neighbor>> lists(segments_.size());
    std::vector<Status> statuses(segments_.size());
    ParallelFor(pool_.get(), static_cast<int64_t>(segments_.size()),
                [&](int64_t s) {
                  auto hits = segments_[s]->Search(query, sp);
                  if (!hits.ok()) {
                    statuses[s] = hits.status();
                    return;
                  }
                  // Segment-local -> global.
                  for (Neighbor& n : hits.value()) n.id += bases_[s];
                  lists[s] = std::move(hits).value();
                });
    for (Status& st : statuses) {
      if (!st.ok()) return std::move(st);
    }
    return MergeTopK(lists, k, /*dedup_ids=*/false);
  }

 private:
  IndexType type_;
  int32_t num_segments_;
  MetricType metric_ = MetricType::kL2;
  std::vector<std::unique_ptr<VectorIndex>> segments_;
  std::vector<int64_t> bases_;
  std::unique_ptr<ThreadPool> pool_;  ///< Null = serial segment scan.
};

}  // namespace

std::unique_ptr<SearchEngine> MakeManuEngine(IndexType type,
                                             int32_t num_segments,
                                             int32_t query_threads) {
  return std::make_unique<ManuEngine>(type, num_segments, query_threads);
}

}  // namespace manu
