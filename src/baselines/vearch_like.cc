#include <algorithm>
#include <map>
#include <memory>
#include <thread>

#include "baselines/engine.h"
#include "common/channel.h"
#include "common/serde.h"
#include "index/index_factory.h"

namespace manu {

namespace {

/// Serialized partial-result packet passed between layers: real
/// serialization + copy cost on every hop, as in a networked
/// searcher->broker->blender pipeline.
std::string PackHits(const std::vector<Neighbor>& hits) {
  BinaryWriter w;
  w.PutU32(static_cast<uint32_t>(hits.size()));
  for (const Neighbor& n : hits) {
    w.PutI64(n.id);
    w.PutFloat(n.score);
  }
  return w.Release();
}

Result<std::vector<Neighbor>> UnpackHits(const std::string& blob) {
  BinaryReader r(blob);
  MANU_ASSIGN_OR_RETURN(uint32_t n, r.GetU32());
  std::vector<Neighbor> hits(n);
  for (uint32_t i = 0; i < n; ++i) {
    MANU_ASSIGN_OR_RETURN(hits[i].id, r.GetI64());
    MANU_ASSIGN_OR_RETURN(hits[i].score, r.GetFloat());
  }
  return hits;
}

/// Vearch-like engine: data partitioned over `num_searchers` IVF searchers;
/// a query fans out to searcher threads, partial results are serialized to
/// a broker thread which merges and re-serializes to the blender (the
/// caller), reproducing the three-layer aggregation overhead the paper
/// cites for Vearch's Figure 8 position.
class VearchLikeEngine : public SearchEngine {
 public:
  explicit VearchLikeEngine(int32_t num_searchers)
      : num_searchers_(num_searchers) {}

  ~VearchLikeEngine() override {
    for (auto& q : searcher_queues_) q->Close();
    broker_in_.Close();
    for (auto& t : threads_) {
      if (t.joinable()) t.join();
    }
  }

  std::string name() const override { return "vearch_like/3layer"; }

  Status Build(const VectorDataset& data) override {
    const int64_t rows = data.NumRows();
    const int64_t per = (rows + num_searchers_ - 1) / num_searchers_;
    for (int64_t begin = 0; begin < rows; begin += per) {
      const int64_t end = std::min(rows, begin + per);
      IndexParams params;
      params.type = IndexType::kIvfFlat;
      params.metric = data.metric;
      params.dim = data.dim;
      params.nlist = static_cast<int32_t>(
          std::max<int64_t>(16, (end - begin) / 256));
      MANU_ASSIGN_OR_RETURN(
          std::unique_ptr<VectorIndex> index,
          BuildVectorIndex(params, data.Row(begin), end - begin));
      partitions_.push_back(std::move(index));
      bases_.push_back(begin);
    }
    // Searcher threads + broker thread.
    searcher_queues_.resize(partitions_.size());
    for (size_t s = 0; s < partitions_.size(); ++s) {
      searcher_queues_[s] = std::make_unique<Channel<Job>>();
      threads_.emplace_back([this, s] { SearcherLoop(s); });
    }
    threads_.emplace_back([this] { BrokerLoop(); });
    return Status::OK();
  }

  Result<std::vector<Neighbor>> Search(const float* query, size_t k,
                                       double knob) const override {
    SearchParams sp;
    sp.k = k;
    sp.nprobe = 1 + static_cast<int32_t>(knob * 63);

    auto reply = std::make_shared<Channel<std::string>>();
    Job job;
    job.query = query;
    job.params = sp;
    job.reply = reply;
    job.expected = partitions_.size();
    for (auto& q : searcher_queues_) q->Push(job);

    // Blender: waits for the broker's merged packet and deserializes it.
    auto packet = reply->PopFor(std::chrono::milliseconds(10000));
    if (!packet.has_value()) return Status::Timeout("broker timed out");
    return UnpackHits(*packet);
  }

 private:
  struct Job {
    const float* query = nullptr;
    SearchParams params;
    std::shared_ptr<Channel<std::string>> reply;
    size_t expected = 0;
  };
  struct PartialPacket {
    std::string blob;
    std::shared_ptr<Channel<std::string>> reply;
    size_t expected = 0;
  };

  void SearcherLoop(size_t s) {
    while (auto job = searcher_queues_[s]->Pop()) {
      auto hits = partitions_[s]->Search(job->query, job->params);
      std::vector<Neighbor> list =
          hits.ok() ? std::move(hits).value() : std::vector<Neighbor>{};
      for (Neighbor& n : list) n.id += bases_[s];
      broker_in_.Push({PackHits(list), job->reply, job->expected});
    }
  }

  void BrokerLoop() {
    // Accumulate per reply-channel until all searchers reported, then merge
    // and forward one serialized packet to the blender.
    std::map<Channel<std::string>*, std::vector<std::string>> pending;
    while (auto packet = broker_in_.Pop()) {
      auto& blobs = pending[packet->reply.get()];
      blobs.push_back(std::move(packet->blob));
      if (blobs.size() < packet->expected) continue;
      std::vector<std::vector<Neighbor>> lists;
      for (const std::string& blob : blobs) {
        auto hits = UnpackHits(blob);
        if (hits.ok()) lists.push_back(std::move(hits).value());
      }
      std::vector<Neighbor> merged =
          MergeTopK(lists, lists.empty() ? 0 : lists[0].size(), false);
      packet->reply->Push(PackHits(merged));
      pending.erase(packet->reply.get());
    }
  }

  int32_t num_searchers_;
  std::vector<std::unique_ptr<VectorIndex>> partitions_;
  std::vector<int64_t> bases_;
  /// mutable: Search() is logically const but enqueues work.
  mutable std::vector<std::unique_ptr<Channel<Job>>> searcher_queues_;
  mutable Channel<PartialPacket> broker_in_;
  std::vector<std::thread> threads_;
};

}  // namespace

std::unique_ptr<SearchEngine> MakeVearchLikeEngine(int32_t num_searchers) {
  return std::make_unique<VearchLikeEngine>(num_searchers);
}

}  // namespace manu
