#include "simd/distances.h"

#include <cmath>

namespace manu::simd {

// Four independent accumulators break the loop-carried dependency so the
// compiler can keep multiple FMA pipes busy and vectorize cleanly.
float L2Sqr(const float* a, const float* b, size_t dim) {
  float acc0 = 0, acc1 = 0, acc2 = 0, acc3 = 0;
  size_t i = 0;
  for (; i + 4 <= dim; i += 4) {
    const float d0 = a[i] - b[i];
    const float d1 = a[i + 1] - b[i + 1];
    const float d2 = a[i + 2] - b[i + 2];
    const float d3 = a[i + 3] - b[i + 3];
    acc0 += d0 * d0;
    acc1 += d1 * d1;
    acc2 += d2 * d2;
    acc3 += d3 * d3;
  }
  for (; i < dim; ++i) {
    const float d = a[i] - b[i];
    acc0 += d * d;
  }
  return (acc0 + acc1) + (acc2 + acc3);
}

float InnerProduct(const float* a, const float* b, size_t dim) {
  float acc0 = 0, acc1 = 0, acc2 = 0, acc3 = 0;
  size_t i = 0;
  for (; i + 4 <= dim; i += 4) {
    acc0 += a[i] * b[i];
    acc1 += a[i + 1] * b[i + 1];
    acc2 += a[i + 2] * b[i + 2];
    acc3 += a[i + 3] * b[i + 3];
  }
  for (; i < dim; ++i) acc0 += a[i] * b[i];
  return (acc0 + acc1) + (acc2 + acc3);
}

float L2NormSqr(const float* a, size_t dim) {
  return InnerProduct(a, a, dim);
}

float CosineSimilarity(const float* a, const float* b, size_t dim) {
  const float ip = InnerProduct(a, b, dim);
  const float na = L2NormSqr(a, dim);
  const float nb = L2NormSqr(b, dim);
  if (na == 0 || nb == 0) return 0;
  return ip / std::sqrt(na * nb);
}

void L2SqrBatch(const float* query, const float* base, size_t n, size_t dim,
                float* out) {
  for (size_t i = 0; i < n; ++i) {
    out[i] = L2Sqr(query, base + i * dim, dim);
  }
}

void InnerProductBatch(const float* query, const float* base, size_t n,
                       size_t dim, float* out) {
  for (size_t i = 0; i < n; ++i) {
    out[i] = InnerProduct(query, base + i * dim, dim);
  }
}

void CosineBatch(const float* query, const float* base, size_t n, size_t dim,
                 float* out) {
  for (size_t i = 0; i < n; ++i) {
    out[i] = CosineSimilarity(query, base + i * dim, dim);
  }
}

}  // namespace manu::simd
