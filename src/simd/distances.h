#ifndef MANU_SIMD_DISTANCES_H_
#define MANU_SIMD_DISTANCES_H_

#include <cstddef>
#include <cstdint>

namespace manu::simd {

/// Distance kernels. The paper attributes part of Manu's edge over other
/// engines to "better implementations with optimizations for CPU cache and
/// SIMD" (Section 5.2); these kernels are written with unrolled,
/// dependency-broken accumulators so compilers auto-vectorize them, and the
/// batch variants process one query against blocks of contiguous rows for
/// cache friendliness.

/// Squared Euclidean distance.
float L2Sqr(const float* a, const float* b, size_t dim);

/// Inner product.
float InnerProduct(const float* a, const float* b, size_t dim);

/// Cosine similarity (0 when either vector is all-zero).
float CosineSimilarity(const float* a, const float* b, size_t dim);

/// Squared L2 norm of a vector.
float L2NormSqr(const float* a, size_t dim);

/// Batch: out[i] = L2Sqr(query, base + i*dim) for i in [0, n).
void L2SqrBatch(const float* query, const float* base, size_t n, size_t dim,
                float* out);

/// Batch inner product.
void InnerProductBatch(const float* query, const float* base, size_t n,
                       size_t dim, float* out);

/// Batch cosine similarity.
void CosineBatch(const float* query, const float* base, size_t n, size_t dim,
                 float* out);

}  // namespace manu::simd

#endif  // MANU_SIMD_DISTANCES_H_
