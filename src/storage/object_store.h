#ifndef MANU_STORAGE_OBJECT_STORE_H_
#define MANU_STORAGE_OBJECT_STORE_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace manu {

/// Object storage abstraction (the paper's S3 / MinIO / local-FS slot,
/// Section 3.2). Binlogs, index files, SSTables and checkpoints all live
/// behind this interface, which is what lets Manu "easily swap storage
/// engines". Implementations must be thread-safe.
class ObjectStore {
 public:
  virtual ~ObjectStore() = default;

  /// Stores `data` at `path`, overwriting any existing object.
  virtual Status Put(const std::string& path, const std::string& data) = 0;

  /// Fetches the whole object.
  virtual Result<std::string> Get(const std::string& path) = 0;

  /// Fetches `len` bytes at `offset` (ranged read; the SSD bucket index
  /// uses this for 4 KB-aligned bucket fetches).
  virtual Result<std::string> GetRange(const std::string& path,
                                       uint64_t offset, uint64_t len) = 0;

  virtual bool Exists(const std::string& path) = 0;
  virtual Status Delete(const std::string& path) = 0;

  /// All object paths with the given prefix, sorted.
  virtual std::vector<std::string> List(const std::string& prefix) = 0;

  /// Size in bytes, or NotFound.
  virtual Result<uint64_t> Size(const std::string& path) = 0;
};

/// In-memory backend: the default for tests and most benches.
class MemoryObjectStore : public ObjectStore {
 public:
  Status Put(const std::string& path, const std::string& data) override;
  Result<std::string> Get(const std::string& path) override;
  Result<std::string> GetRange(const std::string& path, uint64_t offset,
                               uint64_t len) override;
  bool Exists(const std::string& path) override;
  Status Delete(const std::string& path) override;
  std::vector<std::string> List(const std::string& prefix) override;
  Result<uint64_t> Size(const std::string& path) override;

 private:
  std::mutex mu_;
  std::map<std::string, std::string> objects_;
};

/// Filesystem backend rooted at a directory; object paths map to files.
/// This is the paper's "personal computer" deployment target and backs the
/// SSD bucket index benches with real file IO.
class LocalObjectStore : public ObjectStore {
 public:
  /// Creates `root` if needed.
  static Result<std::unique_ptr<LocalObjectStore>> Open(
      const std::string& root);

  Status Put(const std::string& path, const std::string& data) override;
  Result<std::string> Get(const std::string& path) override;
  Result<std::string> GetRange(const std::string& path, uint64_t offset,
                               uint64_t len) override;
  bool Exists(const std::string& path) override;
  Status Delete(const std::string& path) override;
  std::vector<std::string> List(const std::string& prefix) override;
  Result<uint64_t> Size(const std::string& path) override;

 private:
  explicit LocalObjectStore(std::string root) : root_(std::move(root)) {}
  std::string FullPath(const std::string& path) const;

  std::string root_;
};

/// Latency model for a simulated cloud object store.
struct ObjectStoreLatency {
  /// Fixed per-operation latency (S3 first-byte latency is ~10-50 ms; the
  /// default models a same-region store).
  int64_t per_op_micros = 0;
  /// Additional cost per MiB transferred (bandwidth model).
  int64_t per_mib_micros = 0;
};

/// Decorator that injects latency into another store: the S3 stand-in.
/// The paper argues object-store latency is off the query hot path because
/// workers operate on in-memory copies; benches use this wrapper to check
/// that claim rather than assume it.
class LatencyObjectStore : public ObjectStore {
 public:
  LatencyObjectStore(std::shared_ptr<ObjectStore> inner,
                     ObjectStoreLatency latency)
      : inner_(std::move(inner)), latency_(latency) {}

  Status Put(const std::string& path, const std::string& data) override;
  Result<std::string> Get(const std::string& path) override;
  Result<std::string> GetRange(const std::string& path, uint64_t offset,
                               uint64_t len) override;
  bool Exists(const std::string& path) override;
  Status Delete(const std::string& path) override;
  std::vector<std::string> List(const std::string& prefix) override;
  Result<uint64_t> Size(const std::string& path) override;

 private:
  void Sleep(uint64_t bytes) const;

  std::shared_ptr<ObjectStore> inner_;
  ObjectStoreLatency latency_;
};

/// Decorator that routes every operation through the failpoint registry
/// (sibling of LatencyObjectStore): the S3-outage stand-in. Sites are
/// object_store.{put,get,get_range,delete,size}; arm them with
/// FailPointPolicy::ErrorWithProbability / ErrorOnce / Delay to model flaky,
/// degraded or briefly unavailable cloud storage. Exists/List only honor
/// delay policies (their signatures cannot carry an error).
class FaultyObjectStore : public ObjectStore {
 public:
  explicit FaultyObjectStore(std::shared_ptr<ObjectStore> inner)
      : inner_(std::move(inner)) {}

  Status Put(const std::string& path, const std::string& data) override;
  Result<std::string> Get(const std::string& path) override;
  Result<std::string> GetRange(const std::string& path, uint64_t offset,
                               uint64_t len) override;
  bool Exists(const std::string& path) override;
  Status Delete(const std::string& path) override;
  std::vector<std::string> List(const std::string& prefix) override;
  Result<uint64_t> Size(const std::string& path) override;

 private:
  std::shared_ptr<ObjectStore> inner_;
};

}  // namespace manu

#endif  // MANU_STORAGE_OBJECT_STORE_H_
