#ifndef MANU_STORAGE_LSM_MAP_H_
#define MANU_STORAGE_LSM_MAP_H_

#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/types.h"
#include "storage/object_store.h"

namespace manu {

/// The logger's entity-id -> segment-id map (Section 3.3): "the logger also
/// writes the mapping of the new entity ID to segment ID into a local LSM
/// tree and periodically flushes the incremental part of the LSM tree to
/// object storage ... using the SSTable format".
///
/// A miniature LSM: an in-memory memtable plus immutable sorted SSTable
/// objects, searched newest-first. Deletions write a tombstone
/// (kInvalidSegmentId). Loggers use Lookup() to check whether an entity to
/// delete exists in their shards.
class LsmEntityMap {
 public:
  /// `prefix` namespaces the SSTable objects (one map per shard per
  /// collection).
  LsmEntityMap(ObjectStore* store, std::string prefix,
               size_t memtable_flush_entries = 64 * 1024);

  /// Records that `entity_id` lives in `segment`. Auto-flushes the memtable
  /// once it reaches the flush threshold.
  Status Put(int64_t entity_id, SegmentId segment);

  /// Records a tombstone for the entity.
  Status Remove(int64_t entity_id);

  /// Newest-wins lookup across memtable then SSTables. NotFound if never
  /// inserted or tombstoned.
  Result<SegmentId> Lookup(int64_t entity_id) const;

  /// Flushes the memtable to a new SSTable object; no-op when empty.
  Status Flush();

  /// Rebuilds the SSTable list from object storage after logger failover.
  /// Each table is validated (CRC frame + parse); a corrupt or missing tail
  /// object truncates recovery to the last valid table instead of failing —
  /// the dropped mappings are re-derived from WAL replay.
  Status Recover();

  size_t NumSsTables() const;
  size_t MemtableSize() const;

 private:
  struct SsTable {
    std::string path;
    /// Sorted by entity id; loaded lazily and then cached.
    std::vector<std::pair<int64_t, SegmentId>> entries;
    bool loaded = false;
  };

  Status PutInternal(int64_t entity_id, SegmentId segment);
  Status LoadTable(SsTable* table) const;

  ObjectStore* store_;
  std::string prefix_;
  size_t flush_threshold_;

  mutable std::mutex mu_;
  std::map<int64_t, SegmentId> memtable_;
  mutable std::vector<SsTable> tables_;  ///< Oldest first.
  int64_t next_table_id_ = 0;
};

}  // namespace manu

#endif  // MANU_STORAGE_LSM_MAP_H_
