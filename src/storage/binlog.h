#ifndef MANU_STORAGE_BINLOG_H_
#define MANU_STORAGE_BINLOG_H_

#include <string>
#include <vector>

#include "common/dataset.h"
#include "storage/object_store.h"

namespace manu::binlog {

/// Column-based binlog (Section 3.3). Data nodes transpose row-based WAL
/// entries into one object per field so readers (index nodes, recovering
/// query nodes) fetch only the columns they need — "free from the read
/// amplifications".
///
/// Layout under a segment prefix:
///   {prefix}/manifest          row count, primary keys, timestamps
///   {prefix}/field/{field_id}  serialized FieldColumn
/// Every object is framed as [magic u32][payload][crc32c u32] and verified
/// on read.

/// Writes all columns of `batch` plus the manifest.
Status WriteSegment(ObjectStore* store, const std::string& prefix,
                    const EntityBatch& batch);

/// Reads a single field column (no other objects are touched).
Result<FieldColumn> ReadField(ObjectStore* store, const std::string& prefix,
                              FieldId field_id);

/// Reads primary keys + timestamps (the manifest).
struct Manifest {
  std::vector<int64_t> primary_keys;
  std::vector<Timestamp> timestamps;
};
Result<Manifest> ReadManifest(ObjectStore* store, const std::string& prefix);

/// Reads the full segment back into an EntityBatch (all fields).
Result<EntityBatch> ReadSegment(ObjectStore* store, const std::string& prefix);

/// Deletes every binlog object under the prefix.
Status DropSegment(ObjectStore* store, const std::string& prefix);

/// Frames a payload with magic + CRC; exposed for the index serializer.
std::string Frame(const std::string& payload);
/// Validates and strips the frame.
Result<std::string> Unframe(const std::string& framed);

}  // namespace manu::binlog

#endif  // MANU_STORAGE_BINLOG_H_
