#include "storage/meta_store.h"

#include "common/failpoint.h"

namespace manu {

int64_t MetaStore::Put(const std::string& key, const std::string& value) {
  // Put's signature cannot carry an error; delay policies still apply
  // (etcd under load), error policies are ignored here.
  Status fp;
  MANU_FAILPOINT_CAPTURE("meta_store.put", fp);
  WatchEvent event;
  {
    std::lock_guard<std::mutex> lk(mu_);
    const int64_t rev = revision_.fetch_add(1, std::memory_order_acq_rel) + 1;
    auto& entry = data_[key];
    if (entry.create_revision == 0) entry.create_revision = rev;
    entry.value = value;
    entry.mod_revision = rev;
    event = {WatchEventType::kPut, key, value, rev};
  }
  Notify(event);
  return event.revision;
}

Result<MetaStore::Entry> MetaStore::Get(const std::string& key) const {
  MANU_FAILPOINT("meta_store.get");
  std::lock_guard<std::mutex> lk(mu_);
  auto it = data_.find(key);
  if (it == data_.end()) return Status::NotFound("meta key: " + key);
  return it->second;
}

Result<int64_t> MetaStore::CompareAndSwap(const std::string& key,
                                          int64_t expected_revision,
                                          const std::string& value) {
  MANU_FAILPOINT("meta_store.cas");
  WatchEvent event;
  {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = data_.find(key);
    const int64_t current =
        it == data_.end() ? 0 : it->second.mod_revision;
    if (current != expected_revision) {
      return Status::Aborted("CAS conflict on " + key);
    }
    const int64_t rev = revision_.fetch_add(1, std::memory_order_acq_rel) + 1;
    auto& entry = data_[key];
    if (entry.create_revision == 0) entry.create_revision = rev;
    entry.value = value;
    entry.mod_revision = rev;
    event = {WatchEventType::kPut, key, value, rev};
  }
  Notify(event);
  return event.revision;
}

Status MetaStore::Delete(const std::string& key) {
  MANU_FAILPOINT("meta_store.delete");
  WatchEvent event;
  {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = data_.find(key);
    if (it == data_.end()) return Status::NotFound("meta key: " + key);
    data_.erase(it);
    const int64_t rev = revision_.fetch_add(1, std::memory_order_acq_rel) + 1;
    event = {WatchEventType::kDelete, key, "", rev};
  }
  Notify(event);
  return Status::OK();
}

std::vector<std::pair<std::string, MetaStore::Entry>> MetaStore::List(
    const std::string& prefix) const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<std::pair<std::string, Entry>> out;
  for (auto it = data_.lower_bound(prefix);
       it != data_.end() && it->first.compare(0, prefix.size(), prefix) == 0;
       ++it) {
    out.emplace_back(it->first, it->second);
  }
  return out;
}

int64_t MetaStore::Watch(const std::string& prefix,
                         std::function<void(const WatchEvent&)> callback) {
  std::lock_guard<std::mutex> lk(mu_);
  const int64_t id = next_watch_id_++;
  watchers_.push_back({id, prefix, std::move(callback)});
  return id;
}

void MetaStore::Unwatch(int64_t watch_id) {
  std::lock_guard<std::mutex> lk(mu_);
  std::erase_if(watchers_, [&](const Watcher& w) { return w.id == watch_id; });
}

void MetaStore::Notify(const WatchEvent& event) {
  // Copy the matching callbacks out so user code runs without the lock.
  std::vector<std::function<void(const WatchEvent&)>> targets;
  {
    std::lock_guard<std::mutex> lk(mu_);
    for (const auto& w : watchers_) {
      if (event.key.compare(0, w.prefix.size(), w.prefix) == 0) {
        targets.push_back(w.callback);
      }
    }
  }
  for (auto& cb : targets) cb(event);
}

}  // namespace manu
