#include "storage/lsm_map.h"

#include <algorithm>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/retry.h"
#include "common/serde.h"
#include "storage/binlog.h"

namespace manu {

LsmEntityMap::LsmEntityMap(ObjectStore* store, std::string prefix,
                           size_t memtable_flush_entries)
    : store_(store),
      prefix_(std::move(prefix)),
      flush_threshold_(memtable_flush_entries) {}

Status LsmEntityMap::PutInternal(int64_t entity_id, SegmentId segment) {
  std::unique_lock<std::mutex> lk(mu_);
  memtable_[entity_id] = segment;
  if (memtable_.size() < flush_threshold_) return Status::OK();
  lk.unlock();
  return Flush();
}

Status LsmEntityMap::Put(int64_t entity_id, SegmentId segment) {
  return PutInternal(entity_id, segment);
}

Status LsmEntityMap::Remove(int64_t entity_id) {
  return PutInternal(entity_id, kInvalidSegmentId);
}

Result<SegmentId> LsmEntityMap::Lookup(int64_t entity_id) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = memtable_.find(entity_id);
  if (it != memtable_.end()) {
    if (it->second == kInvalidSegmentId) {
      return Status::NotFound("entity tombstoned");
    }
    return it->second;
  }
  // Newest SSTable first.
  for (auto t = tables_.rbegin(); t != tables_.rend(); ++t) {
    MANU_RETURN_NOT_OK(LoadTable(&*t));
    auto pos = std::lower_bound(
        t->entries.begin(), t->entries.end(), entity_id,
        [](const auto& e, int64_t key) { return e.first < key; });
    if (pos != t->entries.end() && pos->first == entity_id) {
      if (pos->second == kInvalidSegmentId) {
        return Status::NotFound("entity tombstoned");
      }
      return pos->second;
    }
  }
  return Status::NotFound("entity not mapped");
}

Status LsmEntityMap::Flush() {
  std::lock_guard<std::mutex> lk(mu_);
  if (memtable_.empty()) return Status::OK();
  BinaryWriter w;
  w.PutU64(memtable_.size());
  for (const auto& [id, seg] : memtable_) {
    w.PutI64(id);
    w.PutI64(seg);
  }
  // Zero-padded table id keeps List() (lexicographic) in creation order.
  char name[32];
  std::snprintf(name, sizeof(name), "%08lld",
                static_cast<long long>(next_table_id_));
  const std::string path = prefix_ + "/sst/" + name;
  const std::string framed = binlog::Frame(w.Release());
  MANU_RETURN_NOT_OK(RetryOp(RetryPolicy{}, "lsm_map.flush",
                             [&] { return store_->Put(path, framed); }));
  ++next_table_id_;

  SsTable table;
  table.path = path;
  table.entries.assign(memtable_.begin(), memtable_.end());
  table.loaded = true;
  tables_.push_back(std::move(table));
  memtable_.clear();
  return Status::OK();
}

Status LsmEntityMap::Recover() {
  std::lock_guard<std::mutex> lk(mu_);
  memtable_.clear();
  tables_.clear();
  next_table_id_ = 0;
  // Validate eagerly, oldest first. SSTables are created strictly in order,
  // so a corrupt or missing object marks the crash frontier: everything
  // from it onward is untrusted and the log is truncated to the last valid
  // table (the WAL replays whatever mappings that drops). Transient read
  // errors are retried so a flaky store does not masquerade as corruption.
  for (const auto& path : store_->List(prefix_ + "/sst/")) {
    SsTable table;
    table.path = path;
    const Status st = LoadTable(&table);
    if (!st.ok()) {
      MANU_LOG_WARN << "lsm recover: truncating at " << path << ": "
                    << st.ToString();
      MetricsRegistry::Global()
          .GetCounter("lsm_map.recover_truncations")
          ->Add(1);
      break;
    }
    tables_.push_back(std::move(table));
    ++next_table_id_;
  }
  return Status::OK();
}

Status LsmEntityMap::LoadTable(SsTable* table) const {
  if (table->loaded) return Status::OK();
  MANU_ASSIGN_OR_RETURN(
      std::string framed,
      RetryResult(RetryPolicy{}, "lsm_map.load_table",
                  [&] { return store_->Get(table->path); }));
  MANU_ASSIGN_OR_RETURN(std::string payload, binlog::Unframe(framed));
  BinaryReader r(payload);
  MANU_ASSIGN_OR_RETURN(uint64_t n, r.GetU64());
  table->entries.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    MANU_ASSIGN_OR_RETURN(int64_t id, r.GetI64());
    MANU_ASSIGN_OR_RETURN(int64_t seg, r.GetI64());
    table->entries.emplace_back(id, seg);
  }
  table->loaded = true;
  return Status::OK();
}

size_t LsmEntityMap::NumSsTables() const {
  std::lock_guard<std::mutex> lk(mu_);
  return tables_.size();
}

size_t LsmEntityMap::MemtableSize() const {
  std::lock_guard<std::mutex> lk(mu_);
  return memtable_.size();
}

}  // namespace manu
