#include "storage/binlog.h"

#include "common/failpoint.h"
#include "common/serde.h"

namespace manu::binlog {

namespace {
constexpr uint32_t kMagic = 0x4D414E55;  // "MANU"

std::string FieldPath(const std::string& prefix, FieldId field_id) {
  return prefix + "/field/" + std::to_string(field_id);
}
std::string ManifestPath(const std::string& prefix) {
  return prefix + "/manifest";
}
}  // namespace

std::string Frame(const std::string& payload) {
  BinaryWriter w;
  w.PutU32(kMagic);
  w.PutU64(payload.size());
  w.PutRaw(payload.data(), payload.size());
  w.PutU32(Crc32c(payload.data(), payload.size()));
  return w.Release();
}

Result<std::string> Unframe(const std::string& framed) {
  BinaryReader r(framed);
  MANU_ASSIGN_OR_RETURN(uint32_t magic, r.GetU32());
  if (magic != kMagic) return Status::Corruption("bad binlog magic");
  MANU_ASSIGN_OR_RETURN(uint64_t size, r.GetU64());
  if (r.remaining() < size + sizeof(uint32_t)) {
    return Status::Corruption("truncated binlog object");
  }
  std::string payload(size, '\0');
  MANU_RETURN_NOT_OK(r.GetRaw(payload.data(), size));
  MANU_ASSIGN_OR_RETURN(uint32_t crc, r.GetU32());
  if (crc != Crc32c(payload.data(), payload.size())) {
    return Status::Corruption("binlog checksum mismatch");
  }
  return payload;
}

Status WriteSegment(ObjectStore* store, const std::string& prefix,
                    const EntityBatch& batch) {
  MANU_FAILPOINT("binlog.write");
  for (const auto& col : batch.columns) {
    BinaryWriter w;
    col.Serialize(&w);
    MANU_RETURN_NOT_OK(
        store->Put(FieldPath(prefix, col.field_id), Frame(w.Release())));
  }
  BinaryWriter w;
  w.PutVector(batch.primary_keys);
  w.PutVector(batch.timestamps);
  return store->Put(ManifestPath(prefix), Frame(w.Release()));
}

Result<FieldColumn> ReadField(ObjectStore* store, const std::string& prefix,
                              FieldId field_id) {
  MANU_FAILPOINT("binlog.read");
  MANU_ASSIGN_OR_RETURN(std::string framed,
                        store->Get(FieldPath(prefix, field_id)));
  MANU_ASSIGN_OR_RETURN(std::string payload, Unframe(framed));
  BinaryReader r(payload);
  return FieldColumn::Deserialize(&r);
}

Result<Manifest> ReadManifest(ObjectStore* store, const std::string& prefix) {
  MANU_ASSIGN_OR_RETURN(std::string framed, store->Get(ManifestPath(prefix)));
  MANU_ASSIGN_OR_RETURN(std::string payload, Unframe(framed));
  BinaryReader r(payload);
  Manifest m;
  MANU_ASSIGN_OR_RETURN(m.primary_keys, r.GetVector<int64_t>());
  MANU_ASSIGN_OR_RETURN(m.timestamps, r.GetVector<Timestamp>());
  return m;
}

Result<EntityBatch> ReadSegment(ObjectStore* store,
                                const std::string& prefix) {
  MANU_FAILPOINT("binlog.read");
  MANU_ASSIGN_OR_RETURN(Manifest manifest, ReadManifest(store, prefix));
  EntityBatch batch;
  batch.primary_keys = std::move(manifest.primary_keys);
  batch.timestamps = std::move(manifest.timestamps);
  for (const auto& path : store->List(prefix + "/field/")) {
    MANU_ASSIGN_OR_RETURN(std::string framed, store->Get(path));
    MANU_ASSIGN_OR_RETURN(std::string payload, Unframe(framed));
    BinaryReader r(payload);
    MANU_ASSIGN_OR_RETURN(FieldColumn col, FieldColumn::Deserialize(&r));
    batch.columns.push_back(std::move(col));
  }
  return batch;
}

Status DropSegment(ObjectStore* store, const std::string& prefix) {
  for (const auto& path : store->List(prefix + "/")) {
    MANU_RETURN_NOT_OK(store->Delete(path));
  }
  return Status::OK();
}

}  // namespace manu::binlog
