#include "storage/object_store.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <thread>

#include "common/failpoint.h"

namespace manu {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// MemoryObjectStore
// ---------------------------------------------------------------------------

Status MemoryObjectStore::Put(const std::string& path,
                              const std::string& data) {
  std::lock_guard<std::mutex> lk(mu_);
  objects_[path] = data;
  return Status::OK();
}

Result<std::string> MemoryObjectStore::Get(const std::string& path) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = objects_.find(path);
  if (it == objects_.end()) return Status::NotFound("object: " + path);
  return it->second;
}

Result<std::string> MemoryObjectStore::GetRange(const std::string& path,
                                                uint64_t offset,
                                                uint64_t len) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = objects_.find(path);
  if (it == objects_.end()) return Status::NotFound("object: " + path);
  if (offset > it->second.size()) {
    return Status::InvalidArgument("range offset past end of " + path);
  }
  return it->second.substr(offset, len);
}

bool MemoryObjectStore::Exists(const std::string& path) {
  std::lock_guard<std::mutex> lk(mu_);
  return objects_.count(path) > 0;
}

Status MemoryObjectStore::Delete(const std::string& path) {
  std::lock_guard<std::mutex> lk(mu_);
  objects_.erase(path);
  return Status::OK();
}

std::vector<std::string> MemoryObjectStore::List(const std::string& prefix) {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<std::string> out;
  for (auto it = objects_.lower_bound(prefix);
       it != objects_.end() && it->first.compare(0, prefix.size(), prefix) == 0;
       ++it) {
    out.push_back(it->first);
  }
  return out;
}

Result<uint64_t> MemoryObjectStore::Size(const std::string& path) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = objects_.find(path);
  if (it == objects_.end()) return Status::NotFound("object: " + path);
  return static_cast<uint64_t>(it->second.size());
}

// ---------------------------------------------------------------------------
// LocalObjectStore
// ---------------------------------------------------------------------------

Result<std::unique_ptr<LocalObjectStore>> LocalObjectStore::Open(
    const std::string& root) {
  std::error_code ec;
  fs::create_directories(root, ec);
  if (ec) return Status::IOError("create_directories " + root + ": " +
                                 ec.message());
  return std::unique_ptr<LocalObjectStore>(new LocalObjectStore(root));
}

std::string LocalObjectStore::FullPath(const std::string& path) const {
  return root_ + "/" + path;
}

Status LocalObjectStore::Put(const std::string& path,
                             const std::string& data) {
  const std::string full = FullPath(path);
  std::error_code ec;
  fs::create_directories(fs::path(full).parent_path(), ec);
  if (ec) return Status::IOError("mkdir for " + path + ": " + ec.message());
  // Write-then-rename for atomicity against concurrent readers.
  const std::string tmp = full + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return Status::IOError("open " + tmp);
    out.write(data.data(), static_cast<std::streamsize>(data.size()));
    if (!out) return Status::IOError("write " + tmp);
  }
  fs::rename(tmp, full, ec);
  if (ec) return Status::IOError("rename " + tmp + ": " + ec.message());
  return Status::OK();
}

Result<std::string> LocalObjectStore::Get(const std::string& path) {
  std::ifstream in(FullPath(path), std::ios::binary | std::ios::ate);
  if (!in) return Status::NotFound("object: " + path);
  const auto size = in.tellg();
  std::string data(static_cast<size_t>(size), '\0');
  in.seekg(0);
  in.read(data.data(), size);
  if (!in) return Status::IOError("read " + path);
  return data;
}

Result<std::string> LocalObjectStore::GetRange(const std::string& path,
                                               uint64_t offset,
                                               uint64_t len) {
  std::ifstream in(FullPath(path), std::ios::binary | std::ios::ate);
  if (!in) return Status::NotFound("object: " + path);
  const uint64_t size = static_cast<uint64_t>(in.tellg());
  if (offset > size) {
    return Status::InvalidArgument("range offset past end of " + path);
  }
  const uint64_t n = std::min(len, size - offset);
  std::string data(static_cast<size_t>(n), '\0');
  in.seekg(static_cast<std::streamoff>(offset));
  in.read(data.data(), static_cast<std::streamsize>(n));
  if (!in) return Status::IOError("ranged read " + path);
  return data;
}

bool LocalObjectStore::Exists(const std::string& path) {
  std::error_code ec;
  return fs::exists(FullPath(path), ec);
}

Status LocalObjectStore::Delete(const std::string& path) {
  std::error_code ec;
  fs::remove(FullPath(path), ec);
  return Status::OK();
}

std::vector<std::string> LocalObjectStore::List(const std::string& prefix) {
  std::vector<std::string> out;
  std::error_code ec;
  for (auto it = fs::recursive_directory_iterator(root_, ec);
       !ec && it != fs::recursive_directory_iterator(); ++it) {
    if (!it->is_regular_file()) continue;
    std::string rel = fs::relative(it->path(), root_, ec).string();
    if (rel.compare(0, prefix.size(), prefix) == 0 &&
        rel.find(".tmp") == std::string::npos) {
      out.push_back(std::move(rel));
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

Result<uint64_t> LocalObjectStore::Size(const std::string& path) {
  std::error_code ec;
  const auto size = fs::file_size(FullPath(path), ec);
  if (ec) return Status::NotFound("object: " + path);
  return static_cast<uint64_t>(size);
}

// ---------------------------------------------------------------------------
// LatencyObjectStore
// ---------------------------------------------------------------------------

void LatencyObjectStore::Sleep(uint64_t bytes) const {
  const int64_t micros =
      latency_.per_op_micros +
      latency_.per_mib_micros * static_cast<int64_t>(bytes >> 20);
  if (micros > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(micros));
  }
}

Status LatencyObjectStore::Put(const std::string& path,
                               const std::string& data) {
  Sleep(data.size());
  return inner_->Put(path, data);
}

Result<std::string> LatencyObjectStore::Get(const std::string& path) {
  auto res = inner_->Get(path);
  Sleep(res.ok() ? res.value().size() : 0);
  return res;
}

Result<std::string> LatencyObjectStore::GetRange(const std::string& path,
                                                 uint64_t offset,
                                                 uint64_t len) {
  auto res = inner_->GetRange(path, offset, len);
  Sleep(res.ok() ? res.value().size() : 0);
  return res;
}

bool LatencyObjectStore::Exists(const std::string& path) {
  Sleep(0);
  return inner_->Exists(path);
}

Status LatencyObjectStore::Delete(const std::string& path) {
  Sleep(0);
  return inner_->Delete(path);
}

std::vector<std::string> LatencyObjectStore::List(const std::string& prefix) {
  Sleep(0);
  return inner_->List(prefix);
}

Result<uint64_t> LatencyObjectStore::Size(const std::string& path) {
  Sleep(0);
  return inner_->Size(path);
}

// ---------------------------------------------------------------------------
// FaultyObjectStore
// ---------------------------------------------------------------------------

Status FaultyObjectStore::Put(const std::string& path,
                              const std::string& data) {
  MANU_FAILPOINT("object_store.put");
  return inner_->Put(path, data);
}

Result<std::string> FaultyObjectStore::Get(const std::string& path) {
  MANU_FAILPOINT("object_store.get");
  return inner_->Get(path);
}

Result<std::string> FaultyObjectStore::GetRange(const std::string& path,
                                                uint64_t offset,
                                                uint64_t len) {
  MANU_FAILPOINT("object_store.get_range");
  return inner_->GetRange(path, offset, len);
}

bool FaultyObjectStore::Exists(const std::string& path) {
  Status st;
  MANU_FAILPOINT_CAPTURE("object_store.exists", st);
  if (!st.ok()) return false;  // An unreachable store reports nothing.
  return inner_->Exists(path);
}

Status FaultyObjectStore::Delete(const std::string& path) {
  MANU_FAILPOINT("object_store.delete");
  return inner_->Delete(path);
}

std::vector<std::string> FaultyObjectStore::List(const std::string& prefix) {
  Status st;
  MANU_FAILPOINT_CAPTURE("object_store.list", st);
  if (!st.ok()) return {};
  return inner_->List(prefix);
}

Result<uint64_t> FaultyObjectStore::Size(const std::string& path) {
  MANU_FAILPOINT("object_store.size");
  return inner_->Size(path);
}

}  // namespace manu
