#ifndef MANU_STORAGE_META_STORE_H_
#define MANU_STORAGE_META_STORE_H_

#include <atomic>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace manu {

/// What changed in a watched range.
enum class WatchEventType : uint8_t { kPut = 0, kDelete = 1 };

struct WatchEvent {
  WatchEventType type;
  std::string key;
  std::string value;   ///< Empty for deletes.
  int64_t revision;
};

/// The etcd stand-in (Section 3.2 storage layer): a revisioned key-value
/// store with compare-and-swap and prefix watches. Coordinators persist
/// system status and metadata here; "when metadata is updated, the updated
/// data is first written to etcd, and then synchronized to coordinators" —
/// the synchronization is the watch callback.
///
/// Watch callbacks run inline under no lock on the mutating thread; they
/// must be fast and must not call back into the MetaStore.
class MetaStore {
 public:
  struct Entry {
    std::string value;
    int64_t create_revision = 0;
    int64_t mod_revision = 0;
  };

  /// Writes key=value; returns the new global revision.
  int64_t Put(const std::string& key, const std::string& value);

  Result<Entry> Get(const std::string& key) const;

  /// Atomic compare-and-swap on the key's mod revision. `expected_revision`
  /// of 0 means "key must not exist". Returns the new revision, or Aborted
  /// on mismatch.
  Result<int64_t> CompareAndSwap(const std::string& key,
                                 int64_t expected_revision,
                                 const std::string& value);

  Status Delete(const std::string& key);

  /// All (key, entry) pairs with the prefix, key-sorted.
  std::vector<std::pair<std::string, Entry>> List(
      const std::string& prefix) const;

  /// Registers a callback for changes to keys with `prefix`; returns a watch
  /// id for Unwatch.
  int64_t Watch(const std::string& prefix,
                std::function<void(const WatchEvent&)> callback);
  void Unwatch(int64_t watch_id);

  int64_t CurrentRevision() const {
    return revision_.load(std::memory_order_acquire);
  }

 private:
  struct Watcher {
    int64_t id;
    std::string prefix;
    std::function<void(const WatchEvent&)> callback;
  };

  void Notify(const WatchEvent& event);

  mutable std::mutex mu_;
  std::map<std::string, Entry> data_;
  std::atomic<int64_t> revision_{0};
  std::vector<Watcher> watchers_;
  int64_t next_watch_id_ = 1;
};

}  // namespace manu

#endif  // MANU_STORAGE_META_STORE_H_
